//! Copy-on-write segmented logs and per-segment query indexes.
//!
//! `Metrics` grows append-only for an entire run, but warm-state forking
//! (`snapshot` module) clones it once per sweep cell. Storing each log as a
//! plain `Vec` makes that clone — and therefore every fork — O(run length).
//! This module stores logs as **sealed immutable segments** behind [`Arc`]
//! plus one bounded mutable tail:
//!
//! ```text
//!   SegLog<T>:  [Arc seg0][Arc seg1]...[Arc segN] | tail (< seg_cap items)
//!                  shared on clone (refcount bump)  | copied on clone
//! ```
//!
//! Cloning shares the sealed prefix by reference, so a fork costs
//! O(segments + tail) instead of O(records). Sealing happens at a fixed
//! append count (`seg_cap`), making segment boundaries a pure function of
//! how many records were pushed — a forked run and a cold run that record
//! the same history produce structurally identical logs.
//!
//! **COW invariants.** A sealed segment is never mutated: appends go to the
//! tail only, and sealing moves the tail into a *new* `Arc`. Two clones can
//! therefore never observe each other's writes; writers never copy shared
//! data because the tail is always uniquely owned.
//!
//! On top of the request log, [`RequestLog`] builds a small per-segment
//! index at seal time (CSR posting lists keyed by request type, by origin
//! class, and by both) so telemetry queries touch only matching records.
//! Records are appended in completion order, so each posting list is
//! chronologically sorted and time ranges resolve with binary search.
//! Queries stream matches in exactly the order a naive full scan would
//! visit them, which keeps downstream floating-point accumulations (means,
//! percentile sorts) **bit-identical** to the unindexed implementation.

use std::fmt;
use std::sync::Arc;

use callgraph::RequestTypeId;
use serde::{DeError, Deserialize, Serialize, Value};
use simnet::SimTime;

use crate::job::{Outcome, OUTCOME_COUNT};
use crate::metrics::{AccessLogEntry, NetworkWindow, RequestRecord, ServiceWindow};

/// Records per sealed segment of the request/access/trace logs.
///
/// Fixed (rather than adaptive) so that segmentation is deterministic in
/// the record count; large enough that per-segment overhead (Arc, index
/// headers) is negligible, small enough that the mutable tail copied on
/// fork stays tiny.
pub const SEG_CAP: usize = 1024;

/// Window rows per sealed segment of the [`WindowLog`].
pub const ROWS_PER_SEG: usize = 128;

/// An append-only copy-on-write log: sealed `Arc` segments plus a bounded
/// mutable tail. See the module docs for the layout and COW invariants.
///
/// The sealed-segment spine is itself behind an `Arc`, so a clone bumps
/// **one** refcount no matter how many segments the log has accumulated —
/// fork cost is O(tail), with no O(prefix / seg_cap) term. The spine is
/// copied only when a seal happens while forks share it
/// ([`Arc::make_mut`]), amortized over the `seg_cap` pushes per seal.
///
/// Equality and `Debug` are *logical*: two logs with the same records
/// compare equal regardless of how clones share their segments.
#[derive(Clone)]
pub struct SegLog<T> {
    /// Sealed segments, each exactly `seg_cap` items. The spine is shared
    /// whole on clone; segments are additionally shared individually so a
    /// seal after a fork copies only the spine, never the records.
    sealed: Arc<Vec<Arc<Vec<T>>>>,
    /// Uniquely-owned mutable tail, always shorter than `seg_cap`.
    tail: Vec<T>,
    /// Seal threshold.
    seg_cap: usize,
}

impl<T> SegLog<T> {
    /// Creates an empty log sealing every `seg_cap` items.
    ///
    /// # Panics
    ///
    /// Panics if `seg_cap` is zero.
    pub fn new(seg_cap: usize) -> Self {
        assert!(seg_cap > 0, "segment capacity must be positive");
        SegLog {
            sealed: Arc::new(Vec::new()),
            tail: Vec::new(),
            seg_cap,
        }
    }

    /// Appends one item, sealing the tail into an immutable segment when it
    /// reaches the threshold.
    pub fn push(&mut self, item: T) {
        self.tail.push(item);
        if self.tail.len() == self.seg_cap {
            let seg = std::mem::replace(&mut self.tail, Vec::with_capacity(self.seg_cap)); // simlint: allow(hot-path-alloc) — amortized: one seal per seg_cap pushes
            Arc::make_mut(&mut self.sealed).push(Arc::new(seg)); // simlint: allow(hot-path-alloc) — amortized: one seal per seg_cap pushes
        }
    }

    /// Total number of items.
    pub fn len(&self) -> usize {
        self.sealed.len() * self.seg_cap + self.tail.len()
    }

    /// `true` when nothing was appended yet.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// The item at `index`, if any. O(1): sealed segments all have exactly
    /// `seg_cap` items.
    pub fn get(&self, index: usize) -> Option<&T> {
        let sealed_len = self.sealed.len() * self.seg_cap;
        if index < sealed_len {
            Some(&self.sealed[index / self.seg_cap][index % self.seg_cap])
        } else {
            self.tail.get(index - sealed_len)
        }
    }

    /// The most recently appended item.
    pub fn last(&self) -> Option<&T> {
        self.tail
            .last()
            .or_else(|| self.sealed.last().and_then(|s| s.last()))
    }

    /// Iterates all items in append order.
    pub fn iter(&self) -> SegLogIter<'_, T> {
        SegLogIter {
            remaining: self.len(),
            segs: self.sealed.iter(),
            cur: [].iter(),
            tail: Some(&self.tail),
        }
    }

    /// The contiguous storage slabs in order: each sealed segment, then the
    /// tail. Concatenated they are the whole log.
    pub(crate) fn slabs(&self) -> impl Iterator<Item = &[T]> + '_ {
        self.sealed
            .iter()
            .map(|s| s.as_slice())
            .chain(std::iter::once(self.tail.as_slice()))
    }

    /// Sealed segments (shared on clone), for index maintenance.
    fn sealed(&self) -> &[Arc<Vec<T>>] {
        &self.sealed
    }

    /// The mutable tail (uniquely owned).
    fn tail(&self) -> &[T] {
        &self.tail
    }
}

impl<T: fmt::Debug> fmt::Debug for SegLog<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq> PartialEq for SegLog<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<T> std::ops::Index<usize> for SegLog<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        self.get(index).expect("SegLog index out of bounds")
    }
}

impl<'a, T> IntoIterator for &'a SegLog<T> {
    type Item = &'a T;
    type IntoIter = SegLogIter<'a, T>;

    fn into_iter(self) -> SegLogIter<'a, T> {
        self.iter()
    }
}

impl<T: Serialize> Serialize for SegLog<T> {
    fn to_value(&self) -> Value {
        // Flat logical sequence: segmentation is an in-memory layout
        // detail, rebuilt deterministically on deserialization.
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for SegLog<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let mut log = SegLog::new(SEG_CAP);
        for item in items {
            log.push(item);
        }
        Ok(log)
    }
}

/// Iterator over a [`SegLog`] in append order.
#[derive(Debug)]
pub struct SegLogIter<'a, T> {
    remaining: usize,
    segs: std::slice::Iter<'a, Arc<Vec<T>>>,
    cur: std::slice::Iter<'a, T>,
    tail: Option<&'a [T]>,
}

impl<'a, T> Iterator for SegLogIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            if let Some(item) = self.cur.next() {
                self.remaining -= 1;
                return Some(item);
            }
            if let Some(seg) = self.segs.next() {
                self.cur = seg.iter();
            } else if let Some(tail) = self.tail.take() {
                self.cur = tail.iter();
            } else {
                return None;
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<T> ExactSizeIterator for SegLogIter<'_, T> {}

/// A filter over request-log records for indexed queries.
///
/// `None` fields match everything; `Default` is the unfiltered query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestFilter {
    /// Restrict to attack (`Some(true)`) or legitimate (`Some(false)`)
    /// traffic.
    pub is_attack: Option<bool>,
    /// Restrict to one request type.
    pub request_type: Option<RequestTypeId>,
    /// Restrict to one request [`Outcome`] (the resilience status axis).
    pub outcome: Option<Outcome>,
}

impl RequestFilter {
    /// Whether a record passes this filter (time range excluded).
    pub fn matches(self, rec: &RequestRecord) -> bool {
        self.is_attack.is_none_or(|a| rec.origin.is_attack == a)
            && self.request_type.is_none_or(|t| rec.request_type == t)
            && self.outcome.is_none_or(|o| rec.outcome == o)
    }
}

/// Compressed-sparse-row posting lists: `group(k)` is the ascending list of
/// record offsets whose key is `k`.
///
/// Public so microbenches can exercise the build in isolation; everything
/// else goes through [`RequestLog`] / [`AccessLog`].
#[derive(Debug)]
pub struct Csr {
    /// `starts[k]..starts[k + 1]` delimits group `k` inside `offsets`.
    starts: Vec<u32>,
    /// Record offsets, grouped by key, ascending within each group.
    offsets: Vec<u32>,
}

impl Csr {
    /// Builds posting lists over `records` with a counting sort (stable, so
    /// offsets stay ascending — i.e. chronological — within each group).
    pub fn build<T>(records: &[T], key: impl Fn(&T) -> usize) -> Csr {
        let groups = records.iter().map(&key).max().map_or(0, |m| m + 1);
        let mut starts = vec![0u32; groups + 1]; // simlint: allow(hot-path-alloc) — runs only at segment seal
        for rec in records {
            starts[key(rec) + 1] += 1;
        }
        for g in 0..groups {
            starts[g + 1] += starts[g];
        }
        let mut cursor = starts.clone(); // simlint: allow(hot-path-alloc) — runs only at segment seal
        let mut offsets = vec![0u32; records.len()]; // simlint: allow(hot-path-alloc) — runs only at segment seal
        for (i, rec) in records.iter().enumerate() {
            let k = key(rec);
            offsets[cursor[k] as usize] = i as u32;
            cursor[k] += 1;
        }
        Csr { starts, offsets }
    }

    /// The ascending offsets of group `k` (empty when `k` never occurred).
    pub fn group(&self, k: usize) -> &[u32] {
        if k + 1 >= self.starts.len() {
            return &[];
        }
        &self.offsets[self.starts[k] as usize..self.starts[k + 1] as usize]
    }
}

/// Per-sealed-segment query index, built once at seal time and shared
/// (behind `Arc`) between clones exactly like the segment it describes.
#[derive(Debug)]
struct SegIndex {
    /// Completion time of the segment's first record.
    first: SimTime,
    /// Completion time of the segment's last record.
    last: SimTime,
    /// Offsets keyed by `request_type.index()`.
    by_type: Csr,
    /// Offsets keyed by `origin.is_attack` (0 = legit, 1 = attack).
    by_origin: Csr,
    /// Offsets keyed by `request_type.index() * 2 + is_attack`.
    by_type_origin: Csr,
    /// Offsets keyed by [`Outcome::index`] (the resilience status axis).
    by_outcome: Csr,
}

impl SegIndex {
    fn build(records: &[RequestRecord]) -> SegIndex {
        SegIndex {
            first: records.first().map_or(SimTime::ZERO, |r| r.completed_at),
            last: records.last().map_or(SimTime::ZERO, |r| r.completed_at),
            by_type: Csr::build(records, |r| r.request_type.index()),
            by_origin: Csr::build(records, |r| usize::from(r.origin.is_attack)),
            by_type_origin: Csr::build(records, |r| {
                r.request_type.index() * 2 + usize::from(r.origin.is_attack)
            }),
            by_outcome: Csr::build(records, |r| r.outcome.index()),
        }
    }

    /// Resolves `filter` against this segment's posting lists: the list to
    /// walk (`None` = every record in the segment) plus a residual outcome
    /// predicate to apply per record.
    ///
    /// An outcome-only filter walks `by_outcome` directly with no residual;
    /// combined with another axis the denser type/origin list is walked and
    /// the outcome is re-checked per record (no three-axis product index —
    /// outcomes other than `Ok` are rare, so the residual check touches few
    /// extra records). A filter without an outcome resolves exactly as it
    /// did before the status axis existed.
    fn plan(&self, filter: RequestFilter) -> (Option<&[u32]>, Option<Outcome>) {
        match (filter.is_attack, filter.request_type) {
            (None, None) => match filter.outcome {
                None => (None, None),
                Some(o) => (Some(self.by_outcome.group(o.index())), None),
            },
            (Some(a), None) => (Some(self.by_origin.group(usize::from(a))), filter.outcome),
            (None, Some(t)) => (Some(self.by_type.group(t.index())), filter.outcome),
            (Some(a), Some(t)) => (
                Some(self.by_type_origin.group(t.index() * 2 + usize::from(a))),
                filter.outcome,
            ),
        }
    }
}

/// The completed-request log: a [`SegLog`] of [`RequestRecord`]s plus a
/// per-segment [`SegIndex`] so queries touch only matching records.
///
/// Records are appended in completion order (the kernel records a request
/// when its response event fires, and events fire in time order), so the
/// log is sorted by `completed_at` — the invariant every binary search here
/// relies on, asserted on push in debug builds.
#[derive(Clone)]
pub struct RequestLog {
    records: SegLog<RequestRecord>,
    /// `indexes[i]` describes `records`' sealed segment `i`. Behind one
    /// `Arc` like the segment spine, so a clone is O(1) regardless of how
    /// many segments have been indexed.
    indexes: Arc<Vec<Arc<SegIndex>>>,
}

impl RequestLog {
    /// Creates an empty log with the default segment capacity.
    pub(crate) fn new() -> Self {
        Self::with_seg_cap(SEG_CAP)
    }

    /// Creates an empty log sealing every `seg_cap` records (small caps are
    /// used by tests to exercise many segments cheaply).
    pub(crate) fn with_seg_cap(seg_cap: usize) -> Self {
        RequestLog {
            records: SegLog::new(seg_cap),
            indexes: Arc::new(Vec::new()),
        }
    }

    /// Appends one record; must be called in completion-time order.
    pub(crate) fn push(&mut self, rec: RequestRecord) {
        debug_assert!(
            self.records
                .last()
                .is_none_or(|prev| prev.completed_at <= rec.completed_at),
            "request log must be appended in completion order"
        );
        self.records.push(rec);
        while self.indexes.len() < self.records.sealed().len() {
            let seg = &self.records.sealed()[self.indexes.len()];
            let index = Arc::new(SegIndex::build(seg)); // simlint: allow(hot-path-alloc) — amortized: one index per sealed segment
            Arc::make_mut(&mut self.indexes).push(index);
        }
    }

    /// Number of completed requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no request completed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at `index` (append order), if any.
    pub fn get(&self, index: usize) -> Option<&RequestRecord> {
        self.records.get(index)
    }

    /// Iterates all records in completion order.
    pub fn iter(&self) -> SegLogIter<'_, RequestRecord> {
        self.records.iter()
    }

    /// Number of records completed in `[from, to)` that pass `filter`.
    ///
    /// O(log) per sealed segment via the posting-list index; only the tail
    /// (bounded by the segment capacity) is scanned.
    pub fn count_matching(&self, from: SimTime, to: SimTime, filter: RequestFilter) -> usize {
        let mut n = 0;
        self.query(from, to, filter, |matched| n += matched.len());
        n
    }

    /// Calls `f` for every record completed in `[from, to)` that passes
    /// `filter`, **in completion order** — exactly the order a naive scan
    /// of the full log would visit them, so float accumulations downstream
    /// stay bit-identical to the unindexed implementation.
    pub fn for_each_matching(
        &self,
        from: SimTime,
        to: SimTime,
        filter: RequestFilter,
        mut f: impl FnMut(&RequestRecord),
    ) {
        self.query(from, to, filter, |matched| match matched {
            Matched::Run(recs) => recs.iter().for_each(&mut f),
            Matched::Posting(recs, offsets) => {
                for &o in offsets {
                    f(&recs[o as usize]);
                }
            }
        });
    }

    /// Shared query walk: resolves `[from, to)` × `filter` to per-segment
    /// match sets, visiting segments (then the tail) in order.
    fn query(
        &self,
        from: SimTime,
        to: SimTime,
        filter: RequestFilter,
        mut visit: impl FnMut(Matched<'_>),
    ) {
        if to <= from {
            return;
        }
        for (seg, index) in self.records.sealed().iter().zip(self.indexes.iter()) {
            if index.last < from {
                continue;
            }
            if index.first >= to {
                break; // segments are chronological: nothing later matches
            }
            let recs = seg.as_slice();
            match index.plan(filter) {
                (None, _) => {
                    let lo = recs.partition_point(|r| r.completed_at < from);
                    let hi = recs.partition_point(|r| r.completed_at < to);
                    visit(Matched::Run(&recs[lo..hi]));
                }
                (Some(offsets), None) => {
                    let lo = offsets.partition_point(|&o| recs[o as usize].completed_at < from);
                    let hi = offsets.partition_point(|&o| recs[o as usize].completed_at < to);
                    visit(Matched::Posting(recs, &offsets[lo..hi]));
                }
                (Some(offsets), Some(outcome)) => {
                    // Residual outcome check over the axis posting list;
                    // offsets are ascending, so emission order is still
                    // exactly naive-scan order.
                    let lo = offsets.partition_point(|&o| recs[o as usize].completed_at < from);
                    let hi = offsets.partition_point(|&o| recs[o as usize].completed_at < to);
                    for &o in &offsets[lo..hi] {
                        let rec = &recs[o as usize];
                        if rec.outcome == outcome {
                            visit(Matched::Run(std::slice::from_ref(rec)));
                        }
                    }
                }
            }
        }
        let tail = self.records.tail();
        let lo = tail.partition_point(|r| r.completed_at < from);
        let hi = tail.partition_point(|r| r.completed_at < to);
        for rec in &tail[lo..hi] {
            if filter.matches(rec) {
                visit(Matched::Run(std::slice::from_ref(rec)));
            }
        }
    }

    /// Counts the records completed in `[from, to)` per [`Outcome`], index
    /// position matching [`Outcome::index`] (`[ok, timed_out, rejected,
    /// shed]`).
    ///
    /// O(log) per sealed segment via the `by_outcome` posting lists; only
    /// the tail is scanned.
    pub fn outcome_counts_in(&self, from: SimTime, to: SimTime) -> [usize; OUTCOME_COUNT] {
        let mut counts = [0usize; OUTCOME_COUNT];
        if to <= from {
            return counts;
        }
        for (seg, index) in self.records.sealed().iter().zip(self.indexes.iter()) {
            if index.last < from {
                continue;
            }
            if index.first >= to {
                break;
            }
            let recs = seg.as_slice();
            for (k, c) in counts.iter_mut().enumerate() {
                let offsets = index.by_outcome.group(k);
                let lo = offsets.partition_point(|&o| recs[o as usize].completed_at < from);
                let hi = offsets.partition_point(|&o| recs[o as usize].completed_at < to);
                *c += hi - lo;
            }
        }
        let tail = self.records.tail();
        let lo = tail.partition_point(|r| r.completed_at < from);
        let hi = tail.partition_point(|r| r.completed_at < to);
        for rec in &tail[lo..hi] {
            counts[rec.outcome.index()] += 1;
        }
        counts
    }

    /// Full-scan twin of [`RequestLog::outcome_counts_in`], kept as the
    /// differential-testing reference for the indexed path.
    pub fn outcome_counts_naive(&self, from: SimTime, to: SimTime) -> [usize; OUTCOME_COUNT] {
        let mut counts = [0usize; OUTCOME_COUNT];
        if to <= from {
            return counts;
        }
        for rec in self {
            if rec.completed_at >= from && rec.completed_at < to {
                counts[rec.outcome.index()] += 1;
            }
        }
        counts
    }

    #[cfg(test)]
    fn sealed_segments(&self) -> &[Arc<Vec<RequestRecord>>] {
        self.records.sealed()
    }
}

/// One resolved match set inside a segment: either a contiguous run of
/// records or a posting list of offsets into the segment.
enum Matched<'a> {
    Run(&'a [RequestRecord]),
    Posting(&'a [RequestRecord], &'a [u32]),
}

impl Matched<'_> {
    fn len(&self) -> usize {
        match self {
            Matched::Run(recs) => recs.len(),
            Matched::Posting(_, offsets) => offsets.len(),
        }
    }
}

impl Serialize for RequestLog {
    fn to_value(&self) -> Value {
        // Records only: the per-segment indexes are derived data and are
        // rebuilt while re-appending on deserialization.
        self.records.to_value()
    }
}

impl<'de> Deserialize<'de> for RequestLog {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let records = Vec::<RequestRecord>::from_value(value)?;
        let mut log = RequestLog::new();
        for rec in records {
            log.push(rec);
        }
        Ok(log)
    }
}

impl PartialEq for RequestLog {
    fn eq(&self, other: &Self) -> bool {
        // The indexes are a pure function of the records; comparing the
        // records compares everything.
        self.records == other.records
    }
}

impl fmt::Debug for RequestLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Logical contents only: the derived-index structure is a pure
        // function of the records and would just add noise (e.g. to the
        // forked-vs-cold comparison reports in `bench_kernel --check`).
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a RequestLog {
    type Item = &'a RequestRecord;
    type IntoIter = SegLogIter<'a, RequestRecord>;

    fn into_iter(self) -> SegLogIter<'a, RequestRecord> {
        self.iter()
    }
}

impl std::ops::Index<usize> for RequestLog {
    type Output = RequestRecord;

    fn index(&self, index: usize) -> &RequestRecord {
        &self.records[index]
    }
}

/// Per-sealed-segment index of the access log: the segment's time range
/// plus CSR posting lists keyed by source IP and by session.
///
/// IPs and sessions are sparse identifiers, so each segment remaps the
/// (typically few) distinct values it contains to dense CSR keys via the
/// sorted `ips` / `sessions` tables.
#[derive(Debug)]
struct AccessIndex {
    /// Submission time of the segment's first entry.
    first: SimTime,
    /// Submission time of the segment's last entry.
    last: SimTime,
    /// Sorted distinct source IPs appearing in the segment.
    ips: Vec<u32>,
    /// Offsets keyed by the position of the entry's IP in `ips`.
    by_ip: Csr,
    /// Sorted distinct sessions appearing in the segment.
    sessions: Vec<u64>,
    /// Offsets keyed by the position of the entry's session in `sessions`.
    by_session: Csr,
}

impl AccessIndex {
    fn build(entries: &[AccessLogEntry]) -> AccessIndex {
        let mut ips: Vec<u32> = entries.iter().map(|e| e.origin.ip).collect(); // simlint: allow(hot-path-alloc) — runs only at segment seal
        ips.sort_unstable();
        ips.dedup();
        let mut sessions: Vec<u64> = entries.iter().map(|e| e.origin.session).collect(); // simlint: allow(hot-path-alloc) — runs only at segment seal
        sessions.sort_unstable();
        sessions.dedup();
        AccessIndex {
            first: entries.first().map_or(SimTime::ZERO, |e| e.at),
            last: entries.last().map_or(SimTime::ZERO, |e| e.at),
            by_ip: Csr::build(entries, |e| {
                ips.binary_search(&e.origin.ip).expect("ip in table")
            }),
            ips,
            by_session: Csr::build(entries, |e| {
                sessions
                    .binary_search(&e.origin.session)
                    .expect("session in table")
            }),
            sessions,
        }
    }
}

/// The access log: a [`SegLog`] of [`AccessLogEntry`]s (one per submitted
/// request) plus a per-segment [`AccessIndex`] keyed by source IP and
/// session, so defense analytics (`defense::Ids`, `defense::RateShield`)
/// touch only the entries matching their window instead of scanning the
/// whole run.
///
/// Entries are appended at submission time, and submissions happen in
/// event order, so the log is sorted by `at` — asserted on push in debug
/// builds; every binary search here relies on it.
#[derive(Clone)]
pub struct AccessLog {
    entries: SegLog<AccessLogEntry>,
    /// `indexes[i]` describes `entries`' sealed segment `i`. Behind one
    /// `Arc` like the segment spine, so a clone is O(1) regardless of how
    /// many segments have been indexed.
    indexes: Arc<Vec<Arc<AccessIndex>>>,
}

impl AccessLog {
    /// Creates an empty log with the default segment capacity.
    pub(crate) fn new() -> Self {
        Self::with_seg_cap(SEG_CAP)
    }

    /// Creates an empty log sealing every `seg_cap` entries (small caps are
    /// used by tests to exercise many segments cheaply).
    pub(crate) fn with_seg_cap(seg_cap: usize) -> Self {
        AccessLog {
            entries: SegLog::new(seg_cap),
            indexes: Arc::new(Vec::new()),
        }
    }

    /// Appends one entry; must be called in submission-time order.
    pub(crate) fn push(&mut self, entry: AccessLogEntry) {
        debug_assert!(
            self.entries.last().is_none_or(|prev| prev.at <= entry.at),
            "access log must be appended in submission order"
        );
        self.entries.push(entry);
        while self.indexes.len() < self.entries.sealed().len() {
            let seg = &self.entries.sealed()[self.indexes.len()];
            let index = Arc::new(AccessIndex::build(seg)); // simlint: allow(hot-path-alloc) — amortized: one index per sealed segment
            Arc::make_mut(&mut self.indexes).push(index);
        }
    }

    /// Number of logged submissions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was submitted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `index` (append order), if any.
    pub fn get(&self, index: usize) -> Option<&AccessLogEntry> {
        self.entries.get(index)
    }

    /// Iterates all entries in submission order.
    pub fn iter(&self) -> SegLogIter<'_, AccessLogEntry> {
        self.entries.iter()
    }

    /// Calls `f` for every entry submitted in `[from, to)`, in submission
    /// order. O(log) per segment to locate the run, O(matching) to visit.
    pub fn for_each_in(&self, from: SimTime, to: SimTime, mut f: impl FnMut(&AccessLogEntry)) {
        if to <= from {
            return;
        }
        for (seg, index) in self.entries.sealed().iter().zip(self.indexes.iter()) {
            if index.last < from {
                continue;
            }
            if index.first >= to {
                return; // segments are chronological: nothing later matches
            }
            let recs = seg.as_slice();
            let lo = recs.partition_point(|e| e.at < from);
            let hi = recs.partition_point(|e| e.at < to);
            recs[lo..hi].iter().for_each(&mut f);
        }
        let tail = self.entries.tail();
        let lo = tail.partition_point(|e| e.at < from);
        let hi = tail.partition_point(|e| e.at < to);
        tail[lo..hi].iter().for_each(&mut f);
    }

    /// Number of entries submitted in `[from, to)`. O(log) per segment.
    pub fn count_in(&self, from: SimTime, to: SimTime) -> usize {
        if to <= from {
            return 0;
        }
        let mut n = 0;
        for (seg, _) in self.overlapping(from, to) {
            let recs = seg.as_slice();
            let lo = recs.partition_point(|e| e.at < from);
            let hi = recs.partition_point(|e| e.at < to);
            n += hi - lo;
        }
        let tail = self.entries.tail();
        let lo = tail.partition_point(|e| e.at < from);
        let hi = tail.partition_point(|e| e.at < to);
        n + (hi - lo)
    }

    /// Per-IP submission times inside `[from, to)`, chronological within
    /// each IP. O(log) per overlapping segment and IP to clip the posting
    /// list, O(matching) to collect — a sliding-window consumer (the rate
    /// shield) never touches the out-of-window prefix.
    pub fn per_ip_times_in(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> std::collections::BTreeMap<u32, Vec<SimTime>> {
        let mut by_ip: std::collections::BTreeMap<u32, Vec<SimTime>> =
            std::collections::BTreeMap::new();
        if to <= from {
            return by_ip;
        }
        for (seg, index) in self.overlapping(from, to) {
            let recs = seg.as_slice();
            for (k, &ip) in index.ips.iter().enumerate() {
                let postings = index.by_ip.group(k);
                let lo = postings.partition_point(|&o| recs[o as usize].at < from);
                let hi = postings.partition_point(|&o| recs[o as usize].at < to);
                if lo < hi {
                    by_ip
                        .entry(ip)
                        .or_default()
                        .extend(postings[lo..hi].iter().map(|&o| recs[o as usize].at));
                }
            }
        }
        let tail = self.entries.tail();
        let lo = tail.partition_point(|e| e.at < from);
        let hi = tail.partition_point(|e| e.at < to);
        for e in &tail[lo..hi] {
            by_ip.entry(e.origin.ip).or_default().push(e.at);
        }
        by_ip
    }

    /// Per-session `(global offset, submission time)` pairs inside
    /// `[from, to)`, chronological within each session. The global offset
    /// is the entry's position in the full log, letting callers restore
    /// exact submission order across sessions (e.g. for alert emission).
    pub fn per_session_in(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> std::collections::BTreeMap<u64, Vec<(usize, SimTime)>> {
        let mut by_session: std::collections::BTreeMap<u64, Vec<(usize, SimTime)>> =
            std::collections::BTreeMap::new();
        if to <= from {
            return by_session;
        }
        let seg_cap = self.entries.seg_cap;
        for (seg_idx, (seg, index)) in self
            .entries
            .sealed()
            .iter()
            .zip(self.indexes.iter())
            .enumerate()
            .filter(|(_, (_, index))| from <= index.last && index.first < to)
        {
            let base = seg_idx * seg_cap;
            let recs = seg.as_slice();
            for (k, &session) in index.sessions.iter().enumerate() {
                let postings = index.by_session.group(k);
                let lo = postings.partition_point(|&o| recs[o as usize].at < from);
                let hi = postings.partition_point(|&o| recs[o as usize].at < to);
                if lo < hi {
                    by_session.entry(session).or_default().extend(
                        postings[lo..hi]
                            .iter()
                            .map(|&o| (base + o as usize, recs[o as usize].at)),
                    );
                }
            }
        }
        let base = self.entries.sealed().len() * seg_cap;
        let tail = self.entries.tail();
        let lo = tail.partition_point(|e| e.at < from);
        let hi = tail.partition_point(|e| e.at < to);
        for (i, e) in tail[lo..hi].iter().enumerate() {
            by_session
                .entry(e.origin.session)
                .or_default()
                .push((base + lo + i, e.at));
        }
        by_session
    }

    /// Full-scan twin of [`AccessLog::for_each_in`]: walks every entry and
    /// filters by time, ignoring the per-segment indexes. Ground truth for
    /// differential tests; visit order is identical (submission order).
    pub fn for_each_naive(&self, from: SimTime, to: SimTime, mut f: impl FnMut(&AccessLogEntry)) {
        if to <= from {
            return;
        }
        for e in &self.entries {
            if e.at >= from && e.at < to {
                f(e);
            }
        }
    }

    /// Full-scan twin of [`AccessLog::count_in`].
    pub fn count_naive(&self, from: SimTime, to: SimTime) -> usize {
        let mut n = 0;
        self.for_each_naive(from, to, |_| n += 1);
        n
    }

    /// Full-scan twin of [`AccessLog::per_ip_times_in`]: per-IP insertion
    /// order matches because both visit entries chronologically.
    pub fn per_ip_times_naive(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> std::collections::BTreeMap<u32, Vec<SimTime>> {
        let mut by_ip: std::collections::BTreeMap<u32, Vec<SimTime>> =
            std::collections::BTreeMap::new();
        self.for_each_naive(from, to, |e| {
            by_ip.entry(e.origin.ip).or_default().push(e.at);
        });
        by_ip
    }

    /// Full-scan twin of [`AccessLog::per_session_in`]: the global offset
    /// is just the entry's position in the full log.
    pub fn per_session_naive(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> std::collections::BTreeMap<u64, Vec<(usize, SimTime)>> {
        let mut by_session: std::collections::BTreeMap<u64, Vec<(usize, SimTime)>> =
            std::collections::BTreeMap::new();
        if to <= from {
            return by_session;
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.at >= from && e.at < to {
                by_session
                    .entry(e.origin.session)
                    .or_default()
                    .push((i, e.at));
            }
        }
        by_session
    }

    /// The sealed segments (with their indexes) whose time range overlaps
    /// `[from, to)`, in chronological order.
    fn overlapping(
        &self,
        from: SimTime,
        to: SimTime,
    ) -> impl Iterator<Item = (&Arc<Vec<AccessLogEntry>>, &Arc<AccessIndex>)> {
        self.entries
            .sealed()
            .iter()
            .zip(self.indexes.iter())
            .filter(move |(_, index)| from <= index.last && index.first < to)
    }
}

impl Serialize for AccessLog {
    fn to_value(&self) -> Value {
        // Entries only: the per-segment indexes are derived data and are
        // rebuilt while re-appending on deserialization.
        self.entries.to_value()
    }
}

impl<'de> Deserialize<'de> for AccessLog {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = Vec::<AccessLogEntry>::from_value(value)?;
        let mut log = AccessLog::new();
        for e in entries {
            log.push(e);
        }
        Ok(log)
    }
}

impl PartialEq for AccessLog {
    fn eq(&self, other: &Self) -> bool {
        // The indexes are a pure function of the entries; comparing the
        // entries compares everything.
        self.entries == other.entries
    }
}

impl fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Logical contents only, like `RequestLog`.
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a AccessLog {
    type Item = &'a AccessLogEntry;
    type IntoIter = SegLogIter<'a, AccessLogEntry>;

    fn into_iter(self) -> SegLogIter<'a, AccessLogEntry> {
        self.iter()
    }
}

impl std::ops::Index<usize> for AccessLog {
    type Output = AccessLogEntry;

    fn index(&self, index: usize) -> &AccessLogEntry {
        &self.entries[index]
    }
}

/// The sampled monitoring windows: per-service rows plus the parallel
/// gateway network series, stored as aligned [`SegLog`]s.
///
/// Row `w` holds the `num_services` samples of window `w` (start time
/// exactly `w * window`: the kernel samples on fixed boundaries), stored
/// contiguously; the service segment capacity is a whole number of rows, so
/// a row never straddles segments and row access is O(1).
#[derive(Clone, PartialEq)]
pub struct WindowLog {
    num_services: usize,
    rows_per_seg: usize,
    /// Flat row-major service samples; segment capacity
    /// `rows_per_seg * num_services`.
    services: SegLog<ServiceWindow>,
    /// One gateway sample per row; segment capacity `rows_per_seg`.
    network: SegLog<NetworkWindow>,
}

impl WindowLog {
    /// Creates an empty window log for `num_services` services.
    pub(crate) fn new(num_services: usize) -> Self {
        Self::with_rows_per_seg(num_services, ROWS_PER_SEG)
    }

    /// Creates an empty window log sealing every `rows_per_seg` rows.
    pub(crate) fn with_rows_per_seg(num_services: usize, rows_per_seg: usize) -> Self {
        WindowLog {
            num_services,
            rows_per_seg,
            services: SegLog::new(rows_per_seg * num_services.max(1)),
            network: SegLog::new(rows_per_seg),
        }
    }

    /// Appends one row of service samples plus its network sample.
    pub(crate) fn push_row(&mut self, services: &[ServiceWindow], network: NetworkWindow) {
        debug_assert_eq!(services.len(), self.num_services);
        for w in services {
            self.services.push(*w);
        }
        self.network.push(network);
    }

    /// Number of sampled rows (windows).
    pub fn rows(&self) -> usize {
        self.network.len()
    }

    /// Iterates all rows in time order; each item is the row's
    /// `num_services` samples.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[ServiceWindow]> + '_ {
        let n = self.num_services.max(1);
        self.services
            .slabs()
            .flat_map(move |slab| slab.chunks_exact(n))
    }

    /// One service's samples over the row range `[lo, hi)`, in time order.
    /// Locating the range is O(1) per storage slab; iteration is
    /// O(matching rows).
    pub fn service_range(
        &self,
        service: usize,
        lo: usize,
        hi: usize,
    ) -> impl Iterator<Item = &ServiceWindow> + '_ {
        let n = self.num_services.max(1);
        let per = self.rows_per_seg;
        self.services
            .slabs()
            .enumerate()
            .flat_map(move |(i, slab)| {
                let base = i * per;
                let rows = slab.len() / n;
                let b = hi.clamp(base, base + rows) - base;
                let a = (lo.clamp(base, base + rows) - base).min(b);
                slab[a * n..b * n].iter().skip(service).step_by(n)
            })
    }

    /// The network samples of the row range `[lo, hi)`, in time order.
    pub fn network_range(&self, lo: usize, hi: usize) -> impl Iterator<Item = &NetworkWindow> + '_ {
        let per = self.rows_per_seg;
        self.network.slabs().enumerate().flat_map(move |(i, slab)| {
            let base = i * per;
            let b = hi.clamp(base, base + slab.len()) - base;
            let a = (lo.clamp(base, base + slab.len()) - base).min(b);
            &slab[a..b]
        })
    }
}

impl Serialize for WindowLog {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("num_services".to_string(), self.num_services.to_value()),
            ("service_windows".to_string(), {
                Value::Seq(self.services.iter().map(Serialize::to_value).collect())
            }),
            ("network_windows".to_string(), {
                Value::Seq(self.network.iter().map(Serialize::to_value).collect())
            }),
        ])
    }
}

impl<'de> Deserialize<'de> for WindowLog {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| DeError::custom(format!("WindowLog: missing field `{name}`")))
        };
        let num_services = usize::from_value(field("num_services")?)?;
        let services = Vec::<ServiceWindow>::from_value(field("service_windows")?)?;
        let network = Vec::<NetworkWindow>::from_value(field("network_windows")?)?;
        if services.len() != network.len() * num_services {
            return Err(DeError::custom(format!(
                "WindowLog: {} service samples do not fill {} rows of {} services",
                services.len(),
                network.len(),
                num_services
            )));
        }
        let mut log = WindowLog::new(num_services);
        if num_services == 0 {
            for net in network {
                log.push_row(&[], net);
            }
        } else {
            for (row, net) in services.chunks(num_services).zip(network) {
                log.push_row(row, net);
            }
        }
        Ok(log)
    }
}

impl fmt::Debug for WindowLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WindowLog")
            .field("rows", &self.rows())
            .field("services", &self.services)
            .field("network", &self.network)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Origin;
    use proptest::prelude::*;
    use simnet::SimDuration;

    /// The outcome variants in [`Outcome::index`] order, for strategies.
    const OUTCOMES: [Outcome; OUTCOME_COUNT] = [
        Outcome::Ok,
        Outcome::TimedOut,
        Outcome::Rejected,
        Outcome::Shed,
    ];

    fn rec(t_us: u64, ty: usize, attack: bool) -> RequestRecord {
        rec_out(t_us, ty, attack, Outcome::Ok)
    }

    fn rec_out(t_us: u64, ty: usize, attack: bool, outcome: Outcome) -> RequestRecord {
        RequestRecord {
            request_type: RequestTypeId::new(ty as u32),
            origin: if attack {
                Origin::attack(9, 9)
            } else {
                Origin::legit(1, 1)
            },
            submitted_at: SimTime::from_micros(t_us.saturating_sub(500)),
            completed_at: SimTime::from_micros(t_us),
            outcome,
        }
    }

    #[test]
    fn outcome_axis_filters_and_counts() {
        use Outcome::*;
        let mut log = RequestLog::with_seg_cap(4);
        let mut records = Vec::new();
        let outcomes = [Ok, TimedOut, Ok, Shed, Rejected, Ok, TimedOut, Ok, Ok, Shed];
        for (i, &o) in outcomes.iter().enumerate() {
            let r = rec_out(i as u64 * 1000, i % 2, i % 3 == 0, o);
            log.push(r);
            records.push(r);
        }
        let (from, to) = (SimTime::ZERO, SimTime::from_micros(100_000));
        assert_eq!(log.outcome_counts_in(from, to), [5, 2, 1, 2]);
        assert_eq!(log.outcome_counts_naive(from, to), [5, 2, 1, 2]);
        // Outcome-only filter: walks the by_outcome posting lists.
        let f = RequestFilter {
            outcome: Some(TimedOut),
            ..Default::default()
        };
        let mut got = Vec::new();
        log.for_each_matching(from, to, f, |r| got.push(*r));
        assert_eq!(got, naive(&records, from, to, f));
        assert_eq!(log.count_matching(from, to, f), 2);
        // Outcome combined with another axis: residual-predicate path.
        let f2 = RequestFilter {
            outcome: Some(Ok),
            request_type: Some(RequestTypeId::new(0)),
            ..Default::default()
        };
        let mut got2 = Vec::new();
        log.for_each_matching(from, to, f2, |r| got2.push(*r));
        assert_eq!(got2, naive(&records, from, to, f2));
        // Degenerate window.
        assert_eq!(log.outcome_counts_in(to, from), [0; OUTCOME_COUNT]);
    }

    #[test]
    fn seglog_seals_and_preserves_order() {
        let mut log = SegLog::new(4);
        for i in 0..11 {
            log.push(i);
        }
        assert_eq!(log.len(), 11);
        assert_eq!(log.sealed().len(), 2);
        assert_eq!(log.tail().len(), 3);
        let all: Vec<i32> = log.iter().copied().collect();
        assert_eq!(all, (0..11).collect::<Vec<_>>());
        assert_eq!(log[4], 4);
        assert_eq!(log.get(10), Some(&10));
        assert_eq!(log.get(11), None);
        assert_eq!(log.last(), Some(&10));
        assert_eq!(log.iter().len(), 11);
    }

    #[test]
    fn seglog_clone_shares_sealed_segments() {
        let mut log = SegLog::new(4);
        for i in 0..9 {
            log.push(i);
        }
        let fork = log.clone();
        assert_eq!(fork, log);
        for (a, b) in log.sealed().iter().zip(fork.sealed()) {
            assert!(Arc::ptr_eq(a, b), "sealed segments must be shared");
        }
        // Appending to the original never mutates what the fork sees.
        log.push(100);
        log.push(101);
        let forked: Vec<i32> = fork.iter().copied().collect();
        assert_eq!(forked, (0..9).collect::<Vec<_>>());
        assert_ne!(fork, log);
    }

    #[test]
    fn request_log_fork_leaves_sealed_segments_untouched() {
        let mut log = RequestLog::with_seg_cap(4);
        for i in 0..10u64 {
            log.push(rec(i * 1000, (i % 3) as usize, i % 2 == 0));
        }
        let fork = log.clone();
        for i in 10..30u64 {
            log.push(rec(i * 1000, (i % 3) as usize, i % 2 == 0));
        }
        // The fork still sees exactly the first 10 records...
        assert_eq!(fork.len(), 10);
        assert_eq!(
            fork.iter().map(|r| r.completed_at).collect::<Vec<_>>(),
            (0..10u64)
                .map(|i| SimTime::from_micros(i * 1000))
                .collect::<Vec<_>>()
        );
        // ...and its sealed segments are physically shared with the
        // original (COW: appends went to fresh tails/segments only).
        for (a, b) in fork.sealed_segments().iter().zip(log.sealed_segments()) {
            assert!(Arc::ptr_eq(a, b), "warm prefix must be shared, not copied");
        }
        // Deterministic segmentation: a cold log with the same records is
        // logically equal.
        let mut cold = RequestLog::with_seg_cap(4);
        for i in 0..30u64 {
            cold.push(rec(i * 1000, (i % 3) as usize, i % 2 == 0));
        }
        assert_eq!(cold, log);
    }

    #[test]
    fn window_log_rows_and_ranges() {
        let mut wl = WindowLog::with_rows_per_seg(2, 3);
        for w in 0..8u64 {
            let row = [
                ServiceWindow {
                    start: SimTime::from_millis(w * 100),
                    busy: SimDuration::from_millis(w),
                    active_cores: 1,
                    admitted: 0,
                    waiting: 0,
                    arrivals: w as u32,
                    completions: 0,
                    replicas: 1,
                },
                ServiceWindow {
                    start: SimTime::from_millis(w * 100),
                    busy: SimDuration::from_millis(100 - w),
                    active_cores: 1,
                    admitted: 0,
                    waiting: 0,
                    arrivals: 100 + w as u32,
                    completions: 0,
                    replicas: 1,
                },
            ];
            wl.push_row(
                &row,
                NetworkWindow {
                    bytes_in: w,
                    bytes_out: 0,
                },
            );
        }
        assert_eq!(wl.rows(), 8);
        assert_eq!(wl.rows_iter().count(), 8);
        for (w, row) in wl.rows_iter().enumerate() {
            assert_eq!(row.len(), 2);
            assert_eq!(row[0].arrivals as usize, w);
            assert_eq!(row[1].arrivals as usize, 100 + w);
        }
        // Ranges spanning segment boundaries (3 rows per segment).
        let col1: Vec<u32> = wl.service_range(1, 2, 7).map(|s| s.arrivals).collect();
        assert_eq!(col1, vec![102, 103, 104, 105, 106]);
        let net: Vec<u64> = wl.network_range(2, 7).map(|n| n.bytes_in).collect();
        assert_eq!(net, vec![2, 3, 4, 5, 6]);
        // Degenerate and clamped ranges.
        assert_eq!(wl.service_range(0, 5, 5).count(), 0);
        assert_eq!(wl.network_range(6, 100).count(), 2);
        // A clone shares sealed slabs and is logically equal.
        let fork = wl.clone();
        assert_eq!(fork, wl);
    }

    fn access(t_us: u64, ip: u32, session: u64, bytes: u64) -> AccessLogEntry {
        AccessLogEntry {
            at: SimTime::from_micros(t_us),
            origin: Origin::legit(ip, session),
            request_type: RequestTypeId::new(0),
            bytes,
        }
    }

    #[test]
    fn access_log_window_queries_match_naive() {
        let mut log = AccessLog::with_seg_cap(4);
        let mut entries = Vec::new();
        for i in 0..37u64 {
            let e = access(i * 250, 10 + (i % 3) as u32, i % 4, i);
            log.push(e);
            entries.push(e);
        }
        let (from, to) = (SimTime::from_micros(2_000), SimTime::from_micros(7_000));
        let in_window = |e: &&AccessLogEntry| e.at >= from && e.at < to;

        let mut seen = Vec::new();
        log.for_each_in(from, to, |e| seen.push(*e));
        let expect: Vec<AccessLogEntry> = entries.iter().filter(in_window).copied().collect();
        assert_eq!(seen, expect);
        assert_eq!(log.count_in(from, to), expect.len());

        // The built-in full-scan twins agree with both the indexed path and
        // the shadow vector.
        let mut naive_seen = Vec::new();
        log.for_each_naive(from, to, |e| naive_seen.push(*e));
        assert_eq!(naive_seen, expect);
        assert_eq!(log.count_naive(from, to), expect.len());

        let by_ip = log.per_ip_times_in(from, to);
        for ip in [10u32, 11, 12] {
            let expect_times: Vec<SimTime> = entries
                .iter()
                .filter(in_window)
                .filter(|e| e.origin.ip == ip)
                .map(|e| e.at)
                .collect();
            assert_eq!(by_ip.get(&ip).cloned().unwrap_or_default(), expect_times);
        }
        assert_eq!(log.per_ip_times_naive(from, to), by_ip);

        let by_session = log.per_session_in(from, to);
        for session in 0u64..4 {
            let expect_pairs: Vec<(usize, SimTime)> = entries
                .iter()
                .enumerate()
                .filter(|(_, e)| in_window(e) && e.origin.session == session)
                .map(|(i, e)| (i, e.at))
                .collect();
            assert_eq!(
                by_session.get(&session).cloned().unwrap_or_default(),
                expect_pairs
            );
        }

        assert_eq!(log.per_session_naive(from, to), by_session);

        // Degenerate windows.
        assert_eq!(log.count_in(to, from), 0);
        assert!(log.per_ip_times_in(to, from).is_empty());
        assert!(log.per_session_in(to, to).is_empty());
        assert_eq!(log.count_naive(to, from), 0);
        assert!(log.per_session_naive(to, to).is_empty());
    }

    /// Naive reference: full scan with predicate filtering.
    fn naive(
        records: &[RequestRecord],
        from: SimTime,
        to: SimTime,
        filter: RequestFilter,
    ) -> Vec<RequestRecord> {
        records
            .iter()
            .filter(|r| r.completed_at >= from && r.completed_at < to && filter.matches(r))
            .copied()
            .collect()
    }

    proptest! {
        /// Indexed window queries return exactly the records a naive full
        /// scan returns, in the same order — over random logs (random
        /// types, origins, duplicate timestamps) and random windows
        /// (overlapping, empty, out of range).
        #[test]
        fn indexed_queries_match_naive_scan(
            seg_cap in 1usize..9,
            steps in proptest::collection::vec(
                (0u64..400, 0usize..4, 0u8..2, 0u8..OUTCOME_COUNT as u8),
                0..200,
            ),
            ranges in proptest::collection::vec((0u64..500, 0u64..500), 1..12),
            // 0 = no origin filter, 1 = legit only, 2 = attack only.
            attack_f in 0u8..3,
            // 0 = no type filter, k = restrict to type k - 1.
            type_f in 0u32..5,
            // 0 = no outcome filter, k = restrict to OUTCOMES[k - 1].
            outcome_f in 0u8..(OUTCOME_COUNT as u8 + 1),
        ) {
            let mut log = RequestLog::with_seg_cap(seg_cap);
            let mut records = Vec::new();
            let mut t = 0u64;
            for (dt, ty, attack, outcome) in steps {
                t += dt; // non-decreasing completion times, duplicates allowed
                let r = rec_out(t, ty, attack == 1, OUTCOMES[outcome as usize]);
                log.push(r);
                records.push(r);
            }
            let filter = RequestFilter {
                is_attack: match attack_f {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                },
                request_type: type_f.checked_sub(1).map(RequestTypeId::new),
                outcome: outcome_f.checked_sub(1).map(|k| OUTCOMES[k as usize]),
            };
            for (a, b) in ranges {
                let (from, to) = (SimTime::from_micros(a), SimTime::from_micros(b));
                let expect = naive(&records, from, to, filter);
                let mut got = Vec::new();
                log.for_each_matching(from, to, filter, |r| got.push(*r));
                prop_assert_eq!(&got, &expect, "gather mismatch");
                prop_assert_eq!(log.count_matching(from, to, filter), expect.len(), "count mismatch");
                let counts = log.outcome_counts_in(from, to);
                prop_assert_eq!(counts, log.outcome_counts_naive(from, to), "outcome twin mismatch");
                let unfiltered = naive(&records, from, to, RequestFilter::default()).len();
                prop_assert_eq!(counts.iter().sum::<usize>(), unfiltered, "outcome counts must partition the window");
            }
        }

        /// Access-log collation queries agree with a naive full scan over
        /// random logs (duplicate timestamps, few/many IPs and sessions)
        /// and random windows.
        #[test]
        fn access_collations_match_naive_scan(
            seg_cap in 1usize..9,
            steps in proptest::collection::vec((0u64..300, 0u32..4, 0u64..3), 0..160),
            ranges in proptest::collection::vec((0u64..400, 0u64..400), 1..10),
        ) {
            let mut log = AccessLog::with_seg_cap(seg_cap);
            let mut entries = Vec::new();
            let mut t = 0u64;
            for (dt, ip, session) in steps {
                t += dt;
                let e = access(t, 20 + ip, session, 64);
                log.push(e);
                entries.push(e);
            }
            for (a, b) in ranges {
                let (from, to) = (SimTime::from_micros(a), SimTime::from_micros(b));
                let mut got = Vec::new();
                log.for_each_in(from, to, |e| got.push(*e));
                let expect: Vec<AccessLogEntry> = entries
                    .iter()
                    .filter(|e| e.at >= from && e.at < to)
                    .copied()
                    .collect();
                prop_assert_eq!(&got, &expect);
                prop_assert_eq!(log.count_in(from, to), expect.len());

                let by_ip = log.per_ip_times_in(from, to);
                let mut expect_ip: std::collections::BTreeMap<u32, Vec<SimTime>> =
                    std::collections::BTreeMap::new();
                for e in &expect {
                    expect_ip.entry(e.origin.ip).or_default().push(e.at);
                }
                prop_assert_eq!(by_ip, expect_ip);

                let by_session = log.per_session_in(from, to);
                let mut expect_session: std::collections::BTreeMap<u64, Vec<(usize, SimTime)>> =
                    std::collections::BTreeMap::new();
                for (i, e) in entries.iter().enumerate() {
                    if e.at >= from && e.at < to {
                        expect_session.entry(e.origin.session).or_default().push((i, e.at));
                    }
                }
                prop_assert_eq!(by_session, expect_session);
            }
        }
    }
}
