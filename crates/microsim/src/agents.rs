//! Small reusable agents for tests, examples and benchmarks.
//!
//! The real workload generators (closed-loop Markov users, bursty traces)
//! live in the `workload` crate and the attacker lives in the `grunt`
//! crate; the agents here are deliberately minimal.

use callgraph::RequestTypeId;
use simnet::{SegSamples, SimDuration};

use crate::agent::{Agent, SimCtx};
use crate::job::{Origin, Response};

/// Submits exactly one request at simulation start and records its latency.
#[derive(Debug, Clone)]
pub struct OneShot {
    request_type: RequestTypeId,
    origin: Origin,
    latency_ms: Option<f64>,
}

impl OneShot {
    /// A one-shot probe for `request_type` from a default legit origin.
    pub fn new(request_type: RequestTypeId) -> Self {
        OneShot {
            request_type,
            origin: Origin::legit(0xC0A8_0001, 1),
            latency_ms: None,
        }
    }

    /// Overrides the origin identity.
    pub fn with_origin(mut self, origin: Origin) -> Self {
        self.origin = origin;
        self
    }

    /// The observed latency in milliseconds, once the response arrived.
    pub fn latency_ms(&self) -> Option<f64> {
        self.latency_ms
    }
}

impl Agent for OneShot {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        ctx.submit(self.request_type, self.origin);
    }

    fn on_response(&mut self, _ctx: &mut SimCtx<'_>, response: &Response) {
        self.latency_ms = Some(response.latency_ms());
    }

    fn snapshot(&self) -> Option<crate::AgentState> {
        Some(crate::AgentState::of(self))
    }
}

/// Submits requests of one type at a fixed deterministic rate (equal
/// spacing) and collects latencies — a minimal open-loop source.
#[derive(Debug, Clone)]
pub struct FixedRate {
    request_type: RequestTypeId,
    interval: SimDuration,
    remaining: u64,
    origin: Origin,
    latencies_ms: SegSamples,
}

impl FixedRate {
    /// Sends `count` requests spaced `interval` apart, starting at t=0.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero and `count > 1`.
    pub fn new(request_type: RequestTypeId, interval: SimDuration, count: u64) -> Self {
        assert!(
            count <= 1 || !interval.is_zero(),
            "zero interval with multiple requests"
        );
        FixedRate {
            request_type,
            interval,
            remaining: count,
            origin: Origin::legit(0xC0A8_0002, 2),
            latencies_ms: SegSamples::new(),
        }
    }

    /// Overrides the origin identity.
    pub fn with_origin(mut self, origin: Origin) -> Self {
        self.origin = origin;
        self
    }

    /// Collected latencies (ms). Copy-on-write, so snapshotting this
    /// agent costs O(tail) however long it has been running.
    pub fn latencies_ms(&self) -> &SegSamples {
        &self.latencies_ms
    }

    /// Mutable access (for percentile queries, which sort lazily).
    pub fn latencies_ms_mut(&mut self) -> &mut SegSamples {
        &mut self.latencies_ms
    }
}

impl Agent for FixedRate {
    fn start(&mut self, ctx: &mut SimCtx<'_>) {
        if self.remaining > 0 {
            ctx.schedule_wake(SimDuration::ZERO, 0);
        }
    }

    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, _token: u64) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        ctx.submit(self.request_type, self.origin);
        if self.remaining > 0 {
            ctx.schedule_wake(self.interval, 0);
        }
    }

    fn on_response(&mut self, _ctx: &mut SimCtx<'_>, response: &Response) {
        self.latencies_ms.push(response.latency_ms());
    }

    fn snapshot(&self) -> Option<crate::AgentState> {
        Some(crate::AgentState::of(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::sim::Simulation;
    use callgraph::{ServiceSpec, TopologyBuilder};
    use simnet::SimTime;

    fn tiny_topology() -> callgraph::Topology {
        let mut b = TopologyBuilder::new();
        let gw = b.add_service(ServiceSpec::new("gw").threads(16).demand_cv(0.0));
        let api = b.add_service(ServiceSpec::new("api").threads(8).demand_cv(0.0));
        b.add_request_type(
            "get",
            vec![
                (gw, SimDuration::from_millis(1)),
                (api, SimDuration::from_millis(4)),
            ],
        );
        b.build()
    }

    #[test]
    fn one_shot_latency_reflects_demands() {
        let mut sim = Simulation::new(tiny_topology(), SimConfig::default());
        let id = sim.add_agent(Box::new(OneShot::new(RequestTypeId::new(0))));
        sim.run_until(SimTime::from_secs(1));
        // Read the probe back out of the simulation.
        let metrics = sim.metrics();
        assert_eq!(metrics.request_log().len(), 1);
        let rec = metrics.request_log()[0];
        // Demand: 1 ms gateway (split .5/.5) + 4 ms api + 4 network hops
        // (client->gw, gw->api, api->gw, gw->client) at 250 us = 6 ms.
        let lat = rec.latency().as_millis_f64();
        assert!((lat - 6.0).abs() < 0.2, "latency was {lat} ms");
        let _ = id;
    }

    #[test]
    fn fixed_rate_sends_count_requests() {
        let mut sim = Simulation::new(tiny_topology(), SimConfig::default());
        sim.add_agent(Box::new(FixedRate::new(
            RequestTypeId::new(0),
            SimDuration::from_millis(10),
            25,
        )));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(sim.metrics().request_log().len(), 25);
    }
}
