//! Simulation configuration and cloud platform profiles.

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// A coarse model of a cloud platform's performance envelope.
///
/// The paper deploys the same application on EC2, Azure and CloudLab and
/// observes the same qualitative behaviour with slightly different
/// absolute numbers. We model a platform as a scale factor on compute
/// demands (faster/slower vCPUs) plus a per-hop network latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformProfile {
    /// Display name, e.g. `"EC2"`.
    pub name: String,
    /// Multiplier applied to every compute demand (1.0 = nominal).
    pub demand_scale: f64,
    /// One-way network latency per RPC hop (client↔gateway and
    /// service↔service).
    pub net_latency: SimDuration,
    /// Fixed per-message network framing overhead, bytes (headers etc.),
    /// counted in gateway traffic.
    pub per_message_overhead: u64,
}

impl PlatformProfile {
    /// Amazon EC2 profile (nominal speed).
    pub fn ec2() -> Self {
        PlatformProfile {
            name: "EC2".into(),
            demand_scale: 1.0,
            net_latency: SimDuration::from_micros(250),
            per_message_overhead: 220,
        }
    }

    /// Microsoft Azure profile (slightly slower vCPU in the paper's
    /// measurements: its baseline RTs are a few percent higher).
    pub fn azure() -> Self {
        PlatformProfile {
            name: "Azure".into(),
            demand_scale: 1.07,
            net_latency: SimDuration::from_micros(300),
            per_message_overhead: 220,
        }
    }

    /// NSF CloudLab profile (bare-metal-ish: slightly faster CPU, slightly
    /// higher LAN latency variance folded into the hop latency).
    pub fn cloudlab() -> Self {
        PlatformProfile {
            name: "CloudLab".into(),
            demand_scale: 0.97,
            net_latency: SimDuration::from_micros(280),
            per_message_overhead: 220,
        }
    }
}

impl Default for PlatformProfile {
    fn default() -> Self {
        PlatformProfile::ec2()
    }
}

/// Platform-level retry policy for failed requests.
///
/// `max_attempts` counts *total* attempts: `1` means no retries (the
/// original submission is the only attempt). Backoff before attempt `n`
/// (n ≥ 2) is `backoff_base · 2^(n-2) · (1 + jitter · u)` with `u` a
/// uniform draw from the kernel's `"kernel/retry"` stream — consumed only
/// when `jitter > 0`, so jitter-free policies leave the stream untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the original submission (≥ 1).
    pub max_attempts: u32,
    /// Base backoff delay, doubled per additional attempt.
    pub backoff_base: SimDuration,
    /// Jitter fraction in `[0, 1]`: the backoff is stretched by up to
    /// `jitter · 100%`, deterministically drawn per retry.
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries: the original attempt is the only one.
    pub const fn disabled() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: SimDuration::ZERO,
            jitter: 0.0,
        }
    }
}

/// Per-service circuit-breaker policy.
///
/// A breaker trips after `failure_threshold` consecutive failures observed
/// at a service (timeouts attributed to it or sheds at its queue). While
/// open it fails requests fast ([`Outcome::Rejected`](crate::Outcome));
/// after `probe_interval` one half-open probe is let through, and its
/// success closes the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive failures that trip the breaker; `0` disables breakers.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a half-open probe.
    pub probe_interval: SimDuration,
}

impl BreakerPolicy {
    /// Breakers off.
    pub const fn disabled() -> Self {
        BreakerPolicy {
            failure_threshold: 0,
            probe_interval: SimDuration::ZERO,
        }
    }
}

/// One request type's (or the default) resilience knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResiliencePolicy {
    /// End-to-end deadline per attempt; `None` means requests never time
    /// out (the pre-resilience behaviour).
    pub deadline: Option<SimDuration>,
    /// Platform-level retry policy for failed attempts.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy (service-level; read from the default
    /// policy only).
    pub breaker: BreakerPolicy,
    /// Bound on each replica's wait queue; arrivals beyond it are shed
    /// ([`Outcome::Shed`](crate::Outcome)). `None` means unbounded.
    pub queue_bound: Option<u32>,
}

impl ResiliencePolicy {
    /// Everything off: no deadlines, no retries, no breakers, unbounded
    /// queues. With this policy the kernel's behaviour is bit-identical to
    /// the pre-resilience platform.
    pub const fn disabled() -> Self {
        ResiliencePolicy {
            deadline: None,
            retry: RetryPolicy::disabled(),
            breaker: BreakerPolicy::disabled(),
            queue_bound: None,
        }
    }

    /// Whether this policy changes nothing.
    pub fn is_disabled(&self) -> bool {
        self.deadline.is_none()
            && self.retry.max_attempts <= 1
            && self.breaker.failure_threshold == 0
            && self.queue_bound.is_none()
    }
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy::disabled()
    }
}

/// A per-request-type policy override.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TypePolicy {
    /// Dense request-type index the override applies to.
    pub request_type: u32,
    /// The policy for that type.
    pub policy: ResiliencePolicy,
}

/// The simulation's resilience configuration: a default policy plus
/// per-request-type overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ResilienceConfig {
    /// Policy for request types without an override. Breaker and
    /// queue-bound settings are service-level and read from here only.
    pub default: ResiliencePolicy,
    /// Per-request-type overrides (deadline/retry axes).
    pub per_type: Vec<TypePolicy>,
}

impl ResilienceConfig {
    /// Everything off (the default).
    pub fn disabled() -> Self {
        ResilienceConfig::default()
    }

    /// One policy for every request type.
    pub fn uniform(policy: ResiliencePolicy) -> Self {
        ResilienceConfig {
            default: policy,
            per_type: Vec::new(),
        }
    }

    /// Adds or replaces the override for `request_type`.
    pub fn set_type(mut self, request_type: u32, policy: ResiliencePolicy) -> Self {
        match self
            .per_type
            .iter_mut()
            .find(|tp| tp.request_type == request_type)
        {
            Some(tp) => tp.policy = policy,
            None => self.per_type.push(TypePolicy {
                request_type,
                policy,
            }),
        }
        self
    }

    /// The effective policy for a request type.
    pub fn policy_for(&self, request_type: u32) -> &ResiliencePolicy {
        self.per_type
            .iter()
            .find(|tp| tp.request_type == request_type)
            .map_or(&self.default, |tp| &tp.policy)
    }

    /// Whether every policy (default and overrides) is a no-op.
    pub fn is_disabled(&self) -> bool {
        self.default.is_disabled() && self.per_type.iter().all(|tp| tp.policy.is_disabled())
    }
}

/// Top-level simulation parameters.
///
/// Construct with [`SimConfig::default`] and override with the
/// builder-style setters:
///
/// ```
/// use microsim::{PlatformProfile, SimConfig};
/// use simnet::SimDuration;
///
/// let cfg = SimConfig::default()
///     .seed(42)
///     .platform(PlatformProfile::azure())
///     .trace_sampling(0.05);
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every internal RNG stream derives from it.
    pub seed: u64,
    /// Cloud platform profile.
    pub platform: PlatformProfile,
    /// Metrics sampling window (the paper's fine-grained monitor uses
    /// 100 ms; coarse 1 s views are aggregated from these windows by the
    /// `telemetry` crate).
    pub window: SimDuration,
    /// Fraction of requests for which a full span tree is recorded
    /// (admin-side Jaeger-style tracing). `0.0` disables tracing.
    pub trace_sampling: f64,
    /// Auto-scaling policy; `None` disables scaling.
    pub autoscale: Option<crate::autoscale::AutoScalePolicy>,
    /// Whether to retain the gateway access log (needed by the IDS in the
    /// `defense` crate; costs memory on long runs).
    pub access_log: bool,
    /// Resilience policies (deadlines, retries, breakers, queue bounds).
    /// Disabled by default — the platform then behaves bit-identically to
    /// the pre-resilience kernel.
    pub resilience: ResilienceConfig,
}

impl SimConfig {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the platform profile.
    pub fn platform(mut self, platform: PlatformProfile) -> Self {
        self.platform = platform;
        self
    }

    /// Sets the metrics window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "metrics window must be positive");
        self.window = window;
        self
    }

    /// Sets the span-tracing sampling fraction (clamped to `[0, 1]`).
    pub fn trace_sampling(mut self, fraction: f64) -> Self {
        self.trace_sampling = fraction.clamp(0.0, 1.0);
        self
    }

    /// Enables auto-scaling with the given policy.
    pub fn autoscale(mut self, policy: crate::autoscale::AutoScalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Enables or disables the gateway access log.
    pub fn access_log(mut self, enabled: bool) -> Self {
        self.access_log = enabled;
        self
    }

    /// Sets the resilience configuration.
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            platform: PlatformProfile::default(),
            window: SimDuration::from_millis(100),
            trace_sampling: 0.0,
            autoscale: None,
            access_log: true,
            resilience: ResilienceConfig::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        assert_ne!(PlatformProfile::ec2(), PlatformProfile::azure());
        assert_ne!(PlatformProfile::azure(), PlatformProfile::cloudlab());
        assert!(PlatformProfile::azure().demand_scale > 1.0);
        assert!(PlatformProfile::cloudlab().demand_scale < 1.0);
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = SimConfig::default()
            .seed(9)
            .window(SimDuration::from_millis(50))
            .trace_sampling(2.0)
            .access_log(false);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.window, SimDuration::from_millis(50));
        assert_eq!(cfg.trace_sampling, 1.0);
        assert!(!cfg.access_log);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = SimConfig::default().window(SimDuration::ZERO);
    }

    #[test]
    fn disabled_policies_are_noops() {
        assert!(ResiliencePolicy::disabled().is_disabled());
        assert!(ResilienceConfig::disabled().is_disabled());
        assert!(SimConfig::default().resilience.is_disabled());
        let active = ResiliencePolicy {
            deadline: Some(SimDuration::from_millis(500)),
            ..ResiliencePolicy::disabled()
        };
        assert!(!active.is_disabled());
        assert!(!ResilienceConfig::uniform(active).is_disabled());
    }

    #[test]
    fn per_type_overrides_resolve() {
        let tight = ResiliencePolicy {
            deadline: Some(SimDuration::from_millis(200)),
            ..ResiliencePolicy::disabled()
        };
        let rc = ResilienceConfig::disabled().set_type(2, tight);
        assert!(rc.policy_for(0).is_disabled());
        assert_eq!(rc.policy_for(2).deadline, tight.deadline);
        // Replacing an existing override keeps the list deduplicated.
        let rc = rc.set_type(2, ResiliencePolicy::disabled());
        assert_eq!(rc.per_type.len(), 1);
        assert!(rc.is_disabled());
    }
}
