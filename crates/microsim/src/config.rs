//! Simulation configuration and cloud platform profiles.

use serde::{Deserialize, Serialize};
use simnet::SimDuration;

/// A coarse model of a cloud platform's performance envelope.
///
/// The paper deploys the same application on EC2, Azure and CloudLab and
/// observes the same qualitative behaviour with slightly different
/// absolute numbers. We model a platform as a scale factor on compute
/// demands (faster/slower vCPUs) plus a per-hop network latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformProfile {
    /// Display name, e.g. `"EC2"`.
    pub name: String,
    /// Multiplier applied to every compute demand (1.0 = nominal).
    pub demand_scale: f64,
    /// One-way network latency per RPC hop (client↔gateway and
    /// service↔service).
    pub net_latency: SimDuration,
    /// Fixed per-message network framing overhead, bytes (headers etc.),
    /// counted in gateway traffic.
    pub per_message_overhead: u64,
}

impl PlatformProfile {
    /// Amazon EC2 profile (nominal speed).
    pub fn ec2() -> Self {
        PlatformProfile {
            name: "EC2".into(),
            demand_scale: 1.0,
            net_latency: SimDuration::from_micros(250),
            per_message_overhead: 220,
        }
    }

    /// Microsoft Azure profile (slightly slower vCPU in the paper's
    /// measurements: its baseline RTs are a few percent higher).
    pub fn azure() -> Self {
        PlatformProfile {
            name: "Azure".into(),
            demand_scale: 1.07,
            net_latency: SimDuration::from_micros(300),
            per_message_overhead: 220,
        }
    }

    /// NSF CloudLab profile (bare-metal-ish: slightly faster CPU, slightly
    /// higher LAN latency variance folded into the hop latency).
    pub fn cloudlab() -> Self {
        PlatformProfile {
            name: "CloudLab".into(),
            demand_scale: 0.97,
            net_latency: SimDuration::from_micros(280),
            per_message_overhead: 220,
        }
    }
}

impl Default for PlatformProfile {
    fn default() -> Self {
        PlatformProfile::ec2()
    }
}

/// Top-level simulation parameters.
///
/// Construct with [`SimConfig::default`] and override with the
/// builder-style setters:
///
/// ```
/// use microsim::{PlatformProfile, SimConfig};
/// use simnet::SimDuration;
///
/// let cfg = SimConfig::default()
///     .seed(42)
///     .platform(PlatformProfile::azure())
///     .trace_sampling(0.05);
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed; every internal RNG stream derives from it.
    pub seed: u64,
    /// Cloud platform profile.
    pub platform: PlatformProfile,
    /// Metrics sampling window (the paper's fine-grained monitor uses
    /// 100 ms; coarse 1 s views are aggregated from these windows by the
    /// `telemetry` crate).
    pub window: SimDuration,
    /// Fraction of requests for which a full span tree is recorded
    /// (admin-side Jaeger-style tracing). `0.0` disables tracing.
    pub trace_sampling: f64,
    /// Auto-scaling policy; `None` disables scaling.
    pub autoscale: Option<crate::autoscale::AutoScalePolicy>,
    /// Whether to retain the gateway access log (needed by the IDS in the
    /// `defense` crate; costs memory on long runs).
    pub access_log: bool,
}

impl SimConfig {
    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the platform profile.
    pub fn platform(mut self, platform: PlatformProfile) -> Self {
        self.platform = platform;
        self
    }

    /// Sets the metrics window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "metrics window must be positive");
        self.window = window;
        self
    }

    /// Sets the span-tracing sampling fraction (clamped to `[0, 1]`).
    pub fn trace_sampling(mut self, fraction: f64) -> Self {
        self.trace_sampling = fraction.clamp(0.0, 1.0);
        self
    }

    /// Enables auto-scaling with the given policy.
    pub fn autoscale(mut self, policy: crate::autoscale::AutoScalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Enables or disables the gateway access log.
    pub fn access_log(mut self, enabled: bool) -> Self {
        self.access_log = enabled;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            platform: PlatformProfile::default(),
            window: SimDuration::from_millis(100),
            trace_sampling: 0.0,
            autoscale: None,
            access_log: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ() {
        assert_ne!(PlatformProfile::ec2(), PlatformProfile::azure());
        assert_ne!(PlatformProfile::azure(), PlatformProfile::cloudlab());
        assert!(PlatformProfile::azure().demand_scale > 1.0);
        assert!(PlatformProfile::cloudlab().demand_scale < 1.0);
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = SimConfig::default()
            .seed(9)
            .window(SimDuration::from_millis(50))
            .trace_sampling(2.0)
            .access_log(false);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.window, SimDuration::from_millis(50));
        assert_eq!(cfg.trace_sampling, 1.0);
        assert!(!cfg.access_log);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = SimConfig::default().window(SimDuration::ZERO);
    }
}
