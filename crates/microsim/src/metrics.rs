//! White-box metric collection: what the administrator (and the
//! experiment harness) can see.
//!
//! The kernel samples every service at a fixed fine-grained window
//! (100 ms by default, matching the paper's Collectl-based zoom-in
//! analysis). Coarser views — the 1 s CloudWatch granularity that the
//! auto-scaler and the resource-based IDS rules see — are aggregations of
//! these windows provided by the `telemetry` crate.

use callgraph::{ExecutionHistory, RequestTypeId, ServiceId};
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

use crate::autoscale::ScalingAction;
use crate::job::Origin;

/// Per-service measurements for one sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceWindow {
    /// Window start time.
    pub start: SimTime,
    /// Core-busy time accumulated in the window, summed over replicas.
    pub busy: SimDuration,
    /// Active cores at window end (normalisation denominator).
    pub active_cores: u32,
    /// Thread slots in use at window end.
    pub admitted: u32,
    /// Requests waiting for a thread slot at window end (queued at the
    /// service, i.e. the paper's "queued requests").
    pub waiting: u32,
    /// RPC/request arrivals during the window.
    pub arrivals: u32,
    /// Step completions during the window.
    pub completions: u32,
    /// Active replicas at window end.
    pub replicas: u32,
}

impl ServiceWindow {
    /// CPU utilisation in `[0, 1]` for the window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        let denom = window.as_secs_f64() * f64::from(self.active_cores.max(1));
        (self.busy.as_secs_f64() / denom).min(1.0)
    }

    /// Total requests in the service (admitted + waiting) at window end.
    pub fn queue_len(&self) -> u32 {
        self.admitted + self.waiting
    }
}

/// One completed end-to-end request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// The request type that was served.
    pub request_type: RequestTypeId,
    /// Client identity and ground-truth attack label.
    pub origin: Origin,
    /// Client-side send time.
    pub submitted_at: SimTime,
    /// Client-side receive time.
    pub completed_at: SimTime,
}

impl RequestRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_since(self.submitted_at)
    }
}

/// One externally submitted request as seen at the gateway — the IDS input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessLogEntry {
    /// Submission time at the gateway.
    pub at: SimTime,
    /// Client identity and ground-truth attack label.
    pub origin: Origin,
    /// The submitted request type.
    pub request_type: RequestTypeId,
    /// Request payload bytes including per-message overhead.
    pub bytes: u64,
}

/// Network traffic counted at the gateway per sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkWindow {
    /// Inbound bytes (requests).
    pub bytes_in: u64,
    /// Outbound bytes (responses).
    pub bytes_out: u64,
}

impl NetworkWindow {
    /// Total traffic in megabytes.
    pub fn total_mb(&self) -> f64 {
        (self.bytes_in + self.bytes_out) as f64 / 1e6
    }
}

/// Everything recorded during a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    window: SimDuration,
    num_services: usize,
    /// Flat row-major window samples: entry `w * num_services + s` is the
    /// sample of service `s` in window `w`. One allocation for the whole
    /// run instead of one per window.
    service_windows: Vec<ServiceWindow>,
    network_windows: Vec<NetworkWindow>,
    request_log: Vec<RequestRecord>,
    access_log: Vec<AccessLogEntry>,
    scaling_actions: Vec<ScalingAction>,
    traces: Vec<(RequestTypeId, ExecutionHistory)>,
}

impl Metrics {
    pub(crate) fn new(window: SimDuration, num_services: usize) -> Self {
        Metrics {
            window,
            num_services,
            service_windows: Vec::new(),
            network_windows: Vec::new(),
            request_log: Vec::new(),
            access_log: Vec::new(),
            scaling_actions: Vec::new(),
            traces: Vec::new(),
        }
    }

    /// The sampling window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of services sampled per window.
    pub fn num_services(&self) -> usize {
        self.num_services
    }

    /// All sampled windows, one row (slice of `num_services` samples) per
    /// window. The iterator is exact-size, so `windows().len()` is the
    /// window count.
    pub fn windows(&self) -> std::slice::ChunksExact<'_, ServiceWindow> {
        self.service_windows.chunks_exact(self.num_services.max(1))
    }

    /// The per-window gateway traffic series (same indexing as
    /// [`Metrics::windows`]).
    pub fn network_windows(&self) -> &[NetworkWindow] {
        &self.network_windows
    }

    /// The time series of one service across all windows.
    pub fn service_series(&self, service: ServiceId) -> impl Iterator<Item = &ServiceWindow> + '_ {
        self.service_windows
            .iter()
            .skip(service.index())
            .step_by(self.num_services.max(1))
    }

    /// Every completed request.
    pub fn request_log(&self) -> &[RequestRecord] {
        &self.request_log
    }

    /// Every external submission (empty when the access log is disabled).
    pub fn access_log(&self) -> &[AccessLogEntry] {
        &self.access_log
    }

    /// Completed scaling actions in time order.
    pub fn scaling_actions(&self) -> &[ScalingAction] {
        &self.scaling_actions
    }

    /// Sampled span trees, with the request type that produced each.
    pub fn traces(&self) -> &[(RequestTypeId, ExecutionHistory)] {
        &self.traces
    }

    /// Mean CPU utilisation of a service over `[from, to)`.
    pub fn mean_utilization(&self, service: ServiceId, from: SimTime, to: SimTime) -> f64 {
        let mut total = 0.0;
        let mut n = 0u32;
        for s in self.service_series(service) {
            if s.start >= from && s.start < to {
                total += s.utilization(self.window);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / f64::from(n)
        }
    }

    // Internal recording API (used by the kernel).

    pub(crate) fn push_window(&mut self, services: &[ServiceWindow], network: NetworkWindow) {
        debug_assert_eq!(services.len(), self.num_services);
        self.service_windows.extend_from_slice(services);
        self.network_windows.push(network);
    }

    pub(crate) fn record_request(&mut self, rec: RequestRecord) {
        self.request_log.push(rec);
    }

    pub(crate) fn record_access(&mut self, entry: AccessLogEntry) {
        self.access_log.push(entry);
    }

    pub(crate) fn record_scaling(&mut self, action: ScalingAction) {
        self.scaling_actions.push(action);
    }

    pub(crate) fn record_trace(&mut self, rt: RequestTypeId, trace: ExecutionHistory) {
        self.traces.push((rt, trace));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_normalises_by_cores() {
        let w = ServiceWindow {
            start: SimTime::ZERO,
            busy: SimDuration::from_millis(100),
            active_cores: 2,
            admitted: 0,
            waiting: 0,
            arrivals: 0,
            completions: 0,
            replicas: 2,
        };
        assert_eq!(w.utilization(SimDuration::from_millis(100)), 0.5);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let w = ServiceWindow {
            start: SimTime::ZERO,
            busy: SimDuration::from_millis(500),
            active_cores: 1,
            admitted: 0,
            waiting: 0,
            arrivals: 0,
            completions: 0,
            replicas: 1,
        };
        assert_eq!(w.utilization(SimDuration::from_millis(100)), 1.0);
    }

    #[test]
    fn request_record_latency() {
        let rec = RequestRecord {
            request_type: RequestTypeId::new(0),
            origin: Origin::legit(0, 0),
            submitted_at: SimTime::from_millis(50),
            completed_at: SimTime::from_millis(180),
        };
        assert_eq!(rec.latency(), SimDuration::from_millis(130));
    }

    #[test]
    fn mean_utilization_windows_filter() {
        let mut m = Metrics::new(SimDuration::from_millis(100), 1);
        for i in 0..10u64 {
            m.push_window(
                &[ServiceWindow {
                    start: SimTime::from_millis(i * 100),
                    busy: SimDuration::from_millis(if i < 5 { 100 } else { 0 }),
                    active_cores: 1,
                    admitted: 0,
                    waiting: 0,
                    arrivals: 0,
                    completions: 0,
                    replicas: 1,
                }],
                NetworkWindow::default(),
            );
        }
        let svc = ServiceId::new(0);
        assert_eq!(
            m.mean_utilization(svc, SimTime::ZERO, SimTime::from_millis(500)),
            1.0
        );
        assert_eq!(
            m.mean_utilization(svc, SimTime::from_millis(500), SimTime::from_secs(1)),
            0.0
        );
        assert_eq!(
            m.mean_utilization(svc, SimTime::ZERO, SimTime::from_secs(1)),
            0.5
        );
        assert_eq!(m.service_series(svc).count(), 10);
    }

    #[test]
    fn network_window_total() {
        let n = NetworkWindow {
            bytes_in: 400_000,
            bytes_out: 600_000,
        };
        assert_eq!(n.total_mb(), 1.0);
    }
}
