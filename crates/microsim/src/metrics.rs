//! White-box metric collection: what the administrator (and the
//! experiment harness) can see.
//!
//! The kernel samples every service at a fixed fine-grained window
//! (100 ms by default, matching the paper's Collectl-based zoom-in
//! analysis). Coarser views — the 1 s CloudWatch granularity that the
//! auto-scaler and the resource-based IDS rules see — are aggregations of
//! these windows provided by the `telemetry` crate.
//!
//! All append-only logs are stored as copy-on-write segmented logs (see
//! [`crate::seglog`]): warm-state forks share the sealed prefix behind
//! `Arc` instead of deep-copying it, and the request log carries
//! per-segment indexes so telemetry queries touch only matching records.

use callgraph::{ExecutionHistory, RequestTypeId, ServiceId};
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

use crate::autoscale::ScalingAction;
use crate::job::{Origin, Outcome};
use crate::seglog::{AccessLog, RequestLog, SegLog, WindowLog, SEG_CAP};

/// Per-service measurements for one sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceWindow {
    /// Window start time.
    pub start: SimTime,
    /// Core-busy time accumulated in the window, summed over replicas.
    pub busy: SimDuration,
    /// Active cores at window end (normalisation denominator).
    pub active_cores: u32,
    /// Thread slots in use at window end.
    pub admitted: u32,
    /// Requests waiting for a thread slot at window end (queued at the
    /// service, i.e. the paper's "queued requests").
    pub waiting: u32,
    /// RPC/request arrivals during the window.
    pub arrivals: u32,
    /// Step completions during the window.
    pub completions: u32,
    /// Active replicas at window end.
    pub replicas: u32,
}

impl ServiceWindow {
    /// CPU utilisation in `[0, 1]` for the window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        let denom = window.as_secs_f64() * f64::from(self.active_cores.max(1));
        (self.busy.as_secs_f64() / denom).min(1.0)
    }

    /// Total requests in the service (admitted + waiting) at window end.
    pub fn queue_len(&self) -> u32 {
        self.admitted + self.waiting
    }
}

/// One completed end-to-end request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// The request type that was served.
    pub request_type: RequestTypeId,
    /// Client identity and ground-truth attack label.
    pub origin: Origin,
    /// Client-side send time.
    pub submitted_at: SimTime,
    /// Client-side receive time.
    pub completed_at: SimTime,
    /// How the request (or failed attempt) ended. Failed attempts are
    /// recorded at failure time with their failure outcome; the
    /// pre-resilience platform records `Ok` only.
    pub outcome: Outcome,
}

impl RequestRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.completed_at.saturating_since(self.submitted_at)
    }
}

/// One externally submitted request as seen at the gateway — the IDS input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessLogEntry {
    /// Submission time at the gateway.
    pub at: SimTime,
    /// Client identity and ground-truth attack label.
    pub origin: Origin,
    /// The submitted request type.
    pub request_type: RequestTypeId,
    /// Request payload bytes including per-message overhead.
    pub bytes: u64,
}

/// Network traffic counted at the gateway per sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NetworkWindow {
    /// Inbound bytes (requests).
    pub bytes_in: u64,
    /// Outbound bytes (responses).
    pub bytes_out: u64,
}

impl NetworkWindow {
    /// Total traffic in megabytes.
    pub fn total_mb(&self) -> f64 {
        (self.bytes_in + self.bytes_out) as f64 / 1e6
    }
}

/// Running totals of the resilience layer's interventions. All zero when
/// every [`ResiliencePolicy`](crate::ResiliencePolicy) is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResilienceCounters {
    /// Platform-level retry attempts scheduled (beyond first attempts).
    pub retries: u64,
    /// Attempts failed by deadline expiry.
    pub timed_out: u64,
    /// Attempts failed fast by an open circuit breaker.
    pub rejected: u64,
    /// Attempts shed at a full bounded wait queue.
    pub shed: u64,
    /// Circuit-breaker open (and half-open re-open) transitions.
    pub breaker_opens: u64,
}

impl ResilienceCounters {
    /// Retry amplification factor: total attempts divided by original
    /// submissions. `1.0` when no retries happened; requires the caller's
    /// completed-request count since the counters only see failures.
    pub fn retry_amplification(&self, first_attempts: u64) -> f64 {
        if first_attempts == 0 {
            return 1.0;
        }
        (first_attempts + self.retries) as f64 / first_attempts as f64
    }
}

/// Everything recorded during a simulation run.
///
/// `Metrics` deliberately does **not** derive `Clone`: the snapshot path
/// clones it per fork, and the copy-on-write sharing of the segmented logs
/// is written out field by field in `crate::snapshot` where `simlint`'s
/// `snapshot-complete` rule cross-checks it against this field list.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    pub(crate) window: SimDuration,
    pub(crate) num_services: usize,
    /// Sampled monitoring windows: per-service rows (row `w` starts at
    /// exactly `w * window`) plus the parallel gateway network series.
    pub(crate) windows: WindowLog,
    /// Every completed request, ordered by completion time, with
    /// per-segment indexes by request type and origin class.
    pub(crate) request_log: RequestLog,
    /// Every external submission, ordered by submission time, with
    /// per-segment indexes by source IP and session.
    pub(crate) access_log: AccessLog,
    pub(crate) scaling_actions: Vec<ScalingAction>,
    pub(crate) traces: SegLog<(RequestTypeId, ExecutionHistory)>,
    /// Resilience-layer intervention totals (all zero when disabled).
    pub(crate) resilience: ResilienceCounters,
}

impl Metrics {
    pub(crate) fn new(window: SimDuration, num_services: usize) -> Self {
        Metrics {
            window,
            num_services,
            windows: WindowLog::new(num_services),
            request_log: RequestLog::new(),
            access_log: AccessLog::new(),
            scaling_actions: Vec::new(),
            traces: SegLog::new(SEG_CAP),
            resilience: ResilienceCounters::default(),
        }
    }

    /// The sampling window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of services sampled per window.
    pub fn num_services(&self) -> usize {
        self.num_services
    }

    /// Number of sampled windows so far.
    pub fn num_windows(&self) -> usize {
        self.windows.rows()
    }

    /// All sampled windows in time order, one row (slice of `num_services`
    /// samples) per window.
    pub fn windows(&self) -> impl Iterator<Item = &[ServiceWindow]> + '_ {
        self.windows.rows_iter()
    }

    /// The per-window gateway traffic series (same indexing as
    /// [`Metrics::windows`]).
    pub fn network_windows(&self) -> impl Iterator<Item = &NetworkWindow> + '_ {
        self.windows.network_range(0, self.windows.rows())
    }

    /// Sum of [`NetworkWindow::total_mb`] over the window-index range
    /// `[lo, hi)` (clamped to the sampled windows), accumulated in time
    /// order.
    pub fn network_total_mb(&self, lo: usize, hi: usize) -> f64 {
        self.windows
            .network_range(lo, hi)
            .map(NetworkWindow::total_mb)
            .sum()
    }

    /// The time series of one service across all windows.
    pub fn service_series(&self, service: ServiceId) -> impl Iterator<Item = &ServiceWindow> + '_ {
        self.windows
            .service_range(service.index(), 0, self.windows.rows())
    }

    /// The time series of one service over the window-index range
    /// `[lo, hi)`, clamped to the sampled windows. Locating the range is
    /// O(1) per storage segment and iteration touches only the matching
    /// rows, so windowed consumers (e.g. the coarse monitor) avoid a full
    /// scan.
    pub fn service_window_range(
        &self,
        service: ServiceId,
        lo: usize,
        hi: usize,
    ) -> impl Iterator<Item = &ServiceWindow> + '_ {
        self.windows.service_range(service.index(), lo, hi)
    }

    /// Every completed request, with indexed time/type/origin queries.
    pub fn request_log(&self) -> &RequestLog {
        &self.request_log
    }

    /// Every external submission (empty when the access log is disabled).
    pub fn access_log(&self) -> &AccessLog {
        &self.access_log
    }

    /// Completed scaling actions in time order.
    pub fn scaling_actions(&self) -> &[ScalingAction] {
        &self.scaling_actions
    }

    /// Sampled span trees, with the request type that produced each.
    pub fn traces(&self) -> &SegLog<(RequestTypeId, ExecutionHistory)> {
        &self.traces
    }

    /// Resilience-layer intervention totals.
    pub fn resilience(&self) -> &ResilienceCounters {
        &self.resilience
    }

    /// Mean CPU utilisation of a service over `[from, to)`.
    ///
    /// Window `w` starts at exactly `w * window`, so the windows whose
    /// start lies in `[from, to)` are the index range
    /// `[⌈from/window⌉, ⌈to/window⌉)`: locating them is O(1) and only the
    /// matching windows are touched. The accumulation order (time order)
    /// matches a filtering scan, so results are bit-identical to one.
    pub fn mean_utilization(&self, service: ServiceId, from: SimTime, to: SimTime) -> f64 {
        let w = self.window.as_micros();
        let lo = from.as_micros().div_ceil(w) as usize;
        let hi = (to.as_micros().div_ceil(w) as usize).min(self.windows.rows());
        if hi <= lo {
            return 0.0;
        }
        let mut total = 0.0;
        for s in self.windows.service_range(service.index(), lo, hi) {
            total += s.utilization(self.window);
        }
        total / (hi - lo) as f64
    }

    // Internal recording API (used by the kernel).

    pub(crate) fn push_window(&mut self, services: &[ServiceWindow], network: NetworkWindow) {
        debug_assert_eq!(services.len(), self.num_services);
        self.windows.push_row(services, network);
    }

    pub(crate) fn record_request(&mut self, rec: RequestRecord) {
        self.request_log.push(rec);
    }

    pub(crate) fn record_access(&mut self, entry: AccessLogEntry) {
        self.access_log.push(entry);
    }

    pub(crate) fn record_scaling(&mut self, action: ScalingAction) {
        self.scaling_actions.push(action);
    }

    pub(crate) fn record_trace(&mut self, rt: RequestTypeId, trace: ExecutionHistory) {
        self.traces.push((rt, trace));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_normalises_by_cores() {
        let w = ServiceWindow {
            start: SimTime::ZERO,
            busy: SimDuration::from_millis(100),
            active_cores: 2,
            admitted: 0,
            waiting: 0,
            arrivals: 0,
            completions: 0,
            replicas: 2,
        };
        assert_eq!(w.utilization(SimDuration::from_millis(100)), 0.5);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let w = ServiceWindow {
            start: SimTime::ZERO,
            busy: SimDuration::from_millis(500),
            active_cores: 1,
            admitted: 0,
            waiting: 0,
            arrivals: 0,
            completions: 0,
            replicas: 1,
        };
        assert_eq!(w.utilization(SimDuration::from_millis(100)), 1.0);
    }

    #[test]
    fn request_record_latency() {
        let rec = RequestRecord {
            request_type: RequestTypeId::new(0),
            origin: Origin::legit(0, 0),
            submitted_at: SimTime::from_millis(50),
            completed_at: SimTime::from_millis(180),
            outcome: Outcome::Ok,
        };
        assert_eq!(rec.latency(), SimDuration::from_millis(130));
    }

    #[test]
    fn retry_amplification_is_attempts_per_submission() {
        let c = ResilienceCounters {
            retries: 50,
            ..ResilienceCounters::default()
        };
        assert_eq!(c.retry_amplification(100), 1.5);
        assert_eq!(c.retry_amplification(0), 1.0);
        assert_eq!(ResilienceCounters::default().retry_amplification(10), 1.0);
    }

    #[test]
    fn mean_utilization_windows_filter() {
        let mut m = Metrics::new(SimDuration::from_millis(100), 1);
        for i in 0..10u64 {
            m.push_window(
                &[ServiceWindow {
                    start: SimTime::from_millis(i * 100),
                    busy: SimDuration::from_millis(if i < 5 { 100 } else { 0 }),
                    active_cores: 1,
                    admitted: 0,
                    waiting: 0,
                    arrivals: 0,
                    completions: 0,
                    replicas: 1,
                }],
                NetworkWindow::default(),
            );
        }
        let svc = ServiceId::new(0);
        assert_eq!(
            m.mean_utilization(svc, SimTime::ZERO, SimTime::from_millis(500)),
            1.0
        );
        assert_eq!(
            m.mean_utilization(svc, SimTime::from_millis(500), SimTime::from_secs(1)),
            0.0
        );
        assert_eq!(
            m.mean_utilization(svc, SimTime::ZERO, SimTime::from_secs(1)),
            0.5
        );
        assert_eq!(m.service_series(svc).count(), 10);
    }

    #[test]
    fn mean_utilization_unaligned_bounds_match_scan() {
        // Bounds that are not multiples of the window: the index range
        // must select exactly the windows a `start >= from && start < to`
        // scan selects.
        let mut m = Metrics::new(SimDuration::from_millis(100), 1);
        for i in 0..10u64 {
            m.push_window(
                &[ServiceWindow {
                    start: SimTime::from_millis(i * 100),
                    busy: SimDuration::from_millis(if i % 2 == 0 { 100 } else { 0 }),
                    active_cores: 1,
                    admitted: 0,
                    waiting: 0,
                    arrivals: 0,
                    completions: 0,
                    replicas: 1,
                }],
                NetworkWindow::default(),
            );
        }
        let svc = ServiceId::new(0);
        for (from_ms, to_ms) in [(0, 1000), (50, 1000), (150, 850), (149, 851), (900, 5000)] {
            let from = SimTime::from_millis(from_ms);
            let to = SimTime::from_millis(to_ms);
            let mut total = 0.0;
            let mut n = 0u32;
            for s in m.service_series(svc) {
                if s.start >= from && s.start < to {
                    total += s.utilization(m.window());
                    n += 1;
                }
            }
            let expect = if n == 0 { 0.0 } else { total / f64::from(n) };
            assert_eq!(
                m.mean_utilization(svc, from, to),
                expect,
                "[{from_ms}, {to_ms})"
            );
        }
    }

    #[test]
    fn network_window_total() {
        let n = NetworkWindow {
            bytes_in: 400_000,
            bytes_out: 600_000,
        };
        assert_eq!(n.total_mb(), 1.0);
    }

    #[test]
    fn network_total_mb_sums_clamped_range() {
        let mut m = Metrics::new(SimDuration::from_millis(100), 1);
        for i in 0..5u64 {
            m.push_window(
                &[ServiceWindow {
                    start: SimTime::from_millis(i * 100),
                    busy: SimDuration::ZERO,
                    active_cores: 1,
                    admitted: 0,
                    waiting: 0,
                    arrivals: 0,
                    completions: 0,
                    replicas: 1,
                }],
                NetworkWindow {
                    bytes_in: 1_000_000,
                    bytes_out: 0,
                },
            );
        }
        assert_eq!(m.num_windows(), 5);
        assert_eq!(m.network_total_mb(0, 5), 5.0);
        assert_eq!(m.network_total_mb(3, 100), 2.0);
        assert_eq!(m.network_total_mb(4, 2), 0.0);
        assert_eq!(m.network_windows().count(), 5);
    }
}
