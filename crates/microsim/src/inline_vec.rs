//! A small vector that stores its first `N` elements inline.
//!
//! Job activation frames are pushed and popped on every RPC hop, and almost
//! all execution paths are shorter than [`Job`](crate::job::Job)'s inline
//! capacity — so frame storage never touches the allocator in the steady
//! state. Deeper paths spill to a heap `Vec` transparently.

use std::ops::{Index, IndexMut};

/// A `Vec`-like container holding up to `N` elements inline.
///
/// Only the operations the kernel needs are provided: push, pop, length and
/// indexing. `T: Copy + Default` keeps the inline buffer trivially
/// initialisable.
#[derive(Debug, Clone)]
pub(crate) struct InlineVec<T: Copy + Default, const N: usize> {
    len: usize,
    inline: [T; N],
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            len: 0,
            inline: [T::default(); N],
            spill: Vec::new(), // simlint: allow(hot-path-alloc) — capacity 0, allocation-free
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no elements are stored.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends `value`.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// Removes and returns the last element, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        if self.len < N {
            Some(self.inline[self.len])
        } else {
            self.spill.pop()
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Index<usize> for InlineVec<T, N> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if i < N {
            &self.inline[i]
        } else {
            &self.spill[i - N]
        }
    }
}

impl<T: Copy + Default, const N: usize> IndexMut<usize> for InlineVec<T, N> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        if i < N {
            &mut self.inline[i]
        } else {
            &mut self.spill[i - N]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_within_inline_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], 0);
        assert_eq!(v[3], 3);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.len(), 3);
        v[1] = 99;
        assert_eq!(v[1], 99);
    }

    #[test]
    fn spills_past_inline_capacity() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..6 {
            v.push(i);
        }
        assert_eq!(v.len(), 6);
        assert_eq!((v[0], v[1], v[2], v[5]), (0, 1, 2, 5));
        for expect in (0..6).rev() {
            assert_eq!(v.pop(), Some(expect));
        }
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn crossing_the_boundary_both_ways() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(1);
        v.push(2);
        v.push(3); // spills
        assert_eq!(v.pop(), Some(3)); // back to inline-only
        v.push(4); // spills again
        assert_eq!(v[2], 4);
        assert_eq!(v.pop(), Some(4));
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }
}
