//! External clients of the platform: the agent interface.
//!
//! Everything that talks to the application from outside — legitimate user
//! populations, the Grunt attacker's bot farm, profiling probes — is an
//! [`Agent`]. Agents see the platform only through [`SimCtx`], which
//! deliberately exposes nothing but what a real external HTTP client could
//! do and observe: submit a request of a public type, get the response
//! back with client-side timestamps, and set timers. The blackbox property
//! of the paper's threat model is therefore enforced by the type system.

use std::any::Any;

use callgraph::RequestTypeId;

use crate::job::{Origin, Response};
use crate::kernel::Kernel;
use crate::snapshot::AgentState;

/// Identifier of a registered agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AgentId(pub(crate) u32);

impl AgentId {
    /// The dense index of this agent.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An external client driven by the simulation.
///
/// Lifecycle: [`Agent::start`] fires once when the simulation begins;
/// afterwards the agent is re-entered on every timer it set
/// ([`Agent::on_wake`]) and on every response to a request it submitted
/// ([`Agent::on_response`]).
///
/// Agents own their randomness (take an `RngStream` at construction) so
/// that the platform's internal draws and the clients' draws never
/// interleave.
pub trait Agent: Any {
    /// Called once at simulation start.
    fn start(&mut self, ctx: &mut SimCtx<'_>);

    /// Called when a timer set via [`SimCtx::schedule_wake`] fires.
    fn on_wake(&mut self, ctx: &mut SimCtx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called when a submitted request completes.
    fn on_response(&mut self, ctx: &mut SimCtx<'_>, response: &Response) {
        let _ = (ctx, response);
    }

    /// Captures this agent's state for
    /// [`Simulation::checkpoint`](crate::Simulation::checkpoint).
    ///
    /// The default returns `None` (not snapshotable), which makes
    /// `checkpoint` fail with the agent's index. `Clone` agents opt in with
    /// a one-liner: `Some(AgentState::of(self))`.
    fn snapshot(&self) -> Option<AgentState> {
        None
    }
}

/// The external-client view of the platform handed to agents.
///
/// # Example
///
/// A minimal agent that fires one request and remembers its latency:
///
/// ```
/// use microsim::{Agent, Origin, Response, SimCtx};
/// use callgraph::RequestTypeId;
///
/// struct Probe {
///     latency_ms: Option<f64>,
/// }
///
/// impl Agent for Probe {
///     fn start(&mut self, ctx: &mut SimCtx<'_>) {
///         ctx.submit(RequestTypeId::new(0), Origin::legit(1, 1));
///     }
///     fn on_response(&mut self, _ctx: &mut SimCtx<'_>, r: &Response) {
///         self.latency_ms = Some(r.latency_ms());
///     }
/// }
/// ```
pub struct SimCtx<'a> {
    pub(crate) kernel: &'a mut Kernel,
    pub(crate) agent: AgentId,
}

impl std::fmt::Debug for SimCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCtx")
            .field("agent", &self.agent)
            .field("now", &self.kernel.now())
            .finish_non_exhaustive()
    }
}

impl<'a> SimCtx<'a> {
    /// The current simulated time.
    pub fn now(&self) -> simnet::SimTime {
        self.kernel.now()
    }

    /// Submits a request of `request_type` with the given origin identity.
    /// Returns a token that the eventual [`Response`] will carry.
    ///
    /// # Panics
    ///
    /// Panics if `request_type` does not exist in the application.
    pub fn submit(&mut self, request_type: RequestTypeId, origin: Origin) -> u64 {
        self.kernel.submit(self.agent, request_type, origin, 0)
    }

    /// Like [`submit`](Self::submit), but attaches a caller-chosen `tag`
    /// that the eventual [`Response`] echoes back verbatim.
    ///
    /// This is the O(1) correlation path for large populations: encode the
    /// submitting user's slab slot in the tag and response dispatch becomes
    /// a direct array index — no token map, no hashing, no allocation. The
    /// tag is client-side bookkeeping only; the platform ignores it (it
    /// never reaches the access log or the IDS).
    pub fn submit_tagged(&mut self, request_type: RequestTypeId, origin: Origin, tag: u64) -> u64 {
        self.kernel.submit(self.agent, request_type, origin, tag)
    }

    /// Schedules [`Agent::on_wake`] to fire after `delay` with `token`.
    pub fn schedule_wake(&mut self, delay: simnet::SimDuration, token: u64) {
        self.kernel.schedule_wake(self.agent, delay, token);
    }

    /// The catalogue of public request types — what a crawler of the
    /// application's public URLs would discover (names and ids only).
    pub fn request_type_catalog(&self) -> Vec<(RequestTypeId, String)> {
        self.kernel.request_type_catalog()
    }
}
