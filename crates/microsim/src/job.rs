//! In-flight requests (jobs) and their completion records.

use callgraph::RequestTypeId;
use serde::{Deserialize, Serialize};
use simnet::SimTime;

use crate::agent::AgentId;
use crate::inline_vec::InlineVec;

/// Inline frame capacity per job. Execution paths in the studied
/// applications are at most a handful of steps deep, so frame storage
/// normally never allocates; deeper paths spill to the heap transparently.
pub(crate) const INLINE_FRAMES: usize = 8;

/// Identity attached to an externally submitted request.
///
/// The platform treats all requests identically; the IDS (`defense` crate)
/// sees `ip` and `session`, and the *evaluation* uses `is_attack` as ground
/// truth when splitting latency distributions into legitimate vs attack
/// traffic. Nothing in the serving path branches on `is_attack`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Origin {
    /// Source IPv4 address (opaque u32; the IDS rate rules key on it).
    pub ip: u32,
    /// Application session id (the IDS inter-request-interval rule keys on
    /// it).
    pub session: u64,
    /// Ground-truth label: `true` when the request was sent by the
    /// attacker.
    pub is_attack: bool,
}

impl Origin {
    /// Origin for a legitimate user with the given ip/session.
    pub fn legit(ip: u32, session: u64) -> Self {
        Origin {
            ip,
            session,
            is_attack: false,
        }
    }

    /// Origin for an attack bot with the given ip/session.
    pub fn attack(ip: u32, session: u64) -> Self {
        Origin {
            ip,
            session,
            is_attack: true,
        }
    }
}

/// How a request ended, as observed by the submitting client.
///
/// With every [`ResiliencePolicy`](crate::ResiliencePolicy) disabled the
/// platform never fails a request and every response carries
/// [`Outcome::Ok`] — the pre-resilience behaviour, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The request completed normally.
    Ok,
    /// The request's deadline expired before completion; every thread slot
    /// it held was released at expiry.
    TimedOut,
    /// An open circuit breaker failed the request fast at some service.
    Rejected,
    /// A bounded wait queue was full at some service and the request was
    /// shed on arrival.
    Shed,
}

/// Number of [`Outcome`] variants (the telemetry index axis size).
pub(crate) const OUTCOME_COUNT: usize = 4;

impl Outcome {
    /// Dense index for counting-sort keys (telemetry CSR axis).
    pub fn index(self) -> usize {
        match self {
            Outcome::Ok => 0,
            Outcome::TimedOut => 1,
            Outcome::Rejected => 2,
            Outcome::Shed => 3,
        }
    }
}

/// Completion notification delivered to the submitting [`Agent`].
///
/// This is everything an external client can observe about one request:
/// what was sent, when, and when the reply arrived.
///
/// [`Agent`]: crate::Agent
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// The token returned by `SimCtx::submit` for this request.
    pub token: u64,
    /// The caller-chosen correlation tag passed to `SimCtx::submit_tagged`
    /// (`0` for plain `submit`). Large populations encode the submitting
    /// user's slab slot here so response dispatch is an O(1) array index
    /// instead of a token hash lookup.
    pub tag: u64,
    /// The request type that was submitted.
    pub request_type: RequestTypeId,
    /// Submission time (client-side send timestamp).
    pub submitted_at: SimTime,
    /// Completion time (client-side receive timestamp).
    pub completed_at: SimTime,
    /// How the request ended. [`Outcome::Ok`] unless a resilience policy
    /// failed it (after exhausting any platform-level retries).
    pub outcome: Outcome,
}

impl Response {
    /// End-to-end response time in fractional milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.completed_at
            .saturating_since(self.submitted_at)
            .as_millis_f64()
    }
}

/// Which phase of a step's compute a segment belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Compute before the downstream RPC (or the whole demand at a leaf).
    Pre,
    /// Compute after the downstream reply.
    Post,
}

/// One activation frame: the job's visit to one service along its path.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Frame {
    /// Index into the service's replica vector where this frame was (or
    /// will be) admitted.
    pub replica: usize,
    /// Whether the frame currently holds a worker-thread slot.
    pub admitted: bool,
}

/// An in-flight request walking its execution path.
#[derive(Debug, Clone)]
pub(crate) struct Job {
    /// Submitting agent, to deliver the [`Response`].
    pub agent: AgentId,
    /// Token the agent can correlate on.
    pub token: u64,
    /// Caller-chosen tag echoed back on the [`Response`].
    pub tag: u64,
    pub request_type: RequestTypeId,
    pub origin: Origin,
    pub submitted_at: SimTime,
    /// Token of the *original* submission: what `SimCtx::submit` returned
    /// and what the final [`Response`] carries. Platform-level retries get
    /// a fresh `token` per attempt (deadline bookkeeping keys on it) but
    /// keep `orig_token`, so agents always correlate on what they were
    /// given.
    pub orig_token: u64,
    /// 1-based attempt number; `1` for the original submission.
    pub attempt: u32,
    /// Set when a deadline expired for this attempt: outstanding
    /// references (queue entries, in-flight events) are tombstones and are
    /// reaped lazily when next touched.
    pub cancelled: bool,
    /// Activation frames; `frames[i]` corresponds to path step `i`.
    /// Frames are pushed as the request descends and popped as replies
    /// propagate back. Stored inline (no allocation) up to
    /// [`INLINE_FRAMES`] steps.
    pub frames: InlineVec<Frame, INLINE_FRAMES>,
    /// Span end times per step for trace recording (admin-side only);
    /// `None` when tracing is disabled for this job. The backing vector is
    /// pooled by the kernel and reused across traced jobs.
    pub spans: Option<Vec<(SimTime, SimTime)>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_constructors_label_correctly() {
        assert!(!Origin::legit(1, 2).is_attack);
        assert!(Origin::attack(1, 2).is_attack);
        assert_eq!(Origin::legit(7, 9).ip, 7);
        assert_eq!(Origin::attack(7, 9).session, 9);
    }

    #[test]
    fn response_latency_ms() {
        let r = Response {
            token: 0,
            tag: 0,
            request_type: RequestTypeId::new(0),
            submitted_at: SimTime::from_millis(10),
            completed_at: SimTime::from_millis(135),
            outcome: Outcome::Ok,
        };
        assert_eq!(r.latency_ms(), 125.0);
    }

    #[test]
    fn outcome_indexes_are_dense() {
        let all = [
            Outcome::Ok,
            Outcome::TimedOut,
            Outcome::Rejected,
            Outcome::Shed,
        ];
        assert_eq!(all.len(), OUTCOME_COUNT);
        for (i, o) in all.iter().enumerate() {
            assert_eq!(o.index(), i);
        }
    }
}
