//! A microservice: a load-balanced set of replicas plus scaling state.

use callgraph::ServiceSpec;
use simnet::SimTime;

use crate::replica::Replica;

/// Runtime state of one microservice.
#[derive(Debug, Clone)]
pub(crate) struct Service {
    pub spec: ServiceSpec,
    pub replicas: Vec<Replica>,
    /// Round-robin cursor used to break load ties deterministically.
    pub rr_cursor: usize,
    /// A scale-up is in flight (provisioning delay pending).
    pub scaling_in_flight: bool,
    /// Consecutive 1 s samples above the scale-up threshold.
    pub hot_seconds: u32,
    /// Consecutive 1 s samples below the scale-down threshold.
    pub cold_seconds: u32,
}

impl Service {
    pub(crate) fn new(spec: ServiceSpec, now: SimTime) -> Self {
        let replicas = (0..spec.replicas)
            .map(|_| Replica::new(spec.threads, spec.cores, now))
            .collect();
        Service {
            spec,
            replicas,
            rr_cursor: 0,
            scaling_in_flight: false,
            hot_seconds: 0,
            cold_seconds: 0,
        }
    }

    /// Picks the replica a new request should go to: least-loaded, with a
    /// rotating cursor breaking ties so equal replicas share work evenly.
    /// Draining replicas are skipped.
    pub(crate) fn pick_replica(&mut self) -> usize {
        let n = self.replicas.len();
        debug_assert!(n > 0, "service with no replicas");
        let mut best: Option<(usize, usize)> = None; // (load, index)
        for offset in 0..n {
            let idx = (self.rr_cursor + offset) % n;
            let r = &self.replicas[idx];
            if r.draining {
                continue;
            }
            let load = r.load();
            match best {
                Some((l, _)) if l <= load => {}
                _ => best = Some((load, idx)),
            }
        }
        let (_, idx) = best.expect("all replicas draining");
        self.rr_cursor = (idx + 1) % n;
        idx
    }

    /// Number of replicas accepting work.
    pub(crate) fn active_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| !r.draining).count()
    }

    /// Total active cores (for utilisation normalisation).
    pub(crate) fn active_cores(&self) -> u32 {
        self.replicas
            .iter()
            .filter(|r| !r.draining)
            .map(|r| r.cores)
            .sum()
    }

    /// Sum of admitted requests across replicas (thread slots in use).
    pub(crate) fn total_admitted(&self) -> u32 {
        self.replicas.iter().map(|r| r.admitted).sum()
    }

    /// Sum of requests waiting for a thread slot across replicas.
    pub(crate) fn total_waiting(&self) -> usize {
        self.replicas.iter().map(|r| r.wait_queue.len()).sum()
    }

    /// Completes a scale-up: reactivates a draining replica when one
    /// exists (cancelling its drain), otherwise adds a fresh one. Replicas
    /// are never removed from the vector — in-flight work and scheduled
    /// events reference them by index.
    pub(crate) fn add_replica(&mut self, now: SimTime) {
        if let Some(r) = self.replicas.iter_mut().find(|r| r.draining) {
            r.draining = false;
            r.update_busy(now);
            return;
        }
        self.replicas
            .push(Replica::new(self.spec.threads, self.spec.cores, now));
    }

    /// Starts draining the least-loaded non-draining replica (scale-down).
    /// Returns `false` when only one active replica remains (never drained).
    pub(crate) fn drain_one(&mut self) -> bool {
        if self.active_replicas() <= 1 {
            return false;
        }
        let idx = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.draining)
            .min_by_key(|(i, r)| (r.load(), *i))
            .map(|(i, _)| i)
            .expect("at least one active replica");
        self.replicas[idx].draining = true;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(replicas: u32) -> Service {
        Service::new(
            ServiceSpec::new("s").threads(4).cores(1).replicas(replicas),
            SimTime::ZERO,
        )
    }

    #[test]
    fn pick_replica_prefers_least_loaded() {
        let mut s = svc(2);
        s.replicas[0].try_admit();
        s.replicas[0].try_admit();
        assert_eq!(s.pick_replica(), 1);
    }

    #[test]
    fn pick_replica_rotates_on_ties() {
        let mut s = svc(3);
        let first = s.pick_replica();
        let second = s.pick_replica();
        assert_ne!(first, second, "tied replicas should rotate");
    }

    #[test]
    fn pick_replica_skips_draining() {
        let mut s = svc(2);
        s.replicas[0].draining = true;
        for _ in 0..4 {
            assert_eq!(s.pick_replica(), 1);
        }
    }

    #[test]
    fn drain_one_keeps_last_replica() {
        let mut s = svc(2);
        assert!(s.drain_one());
        assert_eq!(s.active_replicas(), 1);
        assert!(!s.drain_one());
    }

    #[test]
    fn drained_replicas_stay_in_place() {
        // Indices must remain valid for in-flight work: draining never
        // shrinks the vector.
        let mut s = svc(2);
        s.drain_one();
        assert_eq!(s.replicas.len(), 2);
        assert_eq!(s.active_replicas(), 1);
    }

    #[test]
    fn scale_up_reactivates_draining_replica() {
        let mut s = svc(2);
        s.drain_one();
        s.add_replica(SimTime::from_secs(1));
        assert_eq!(s.replicas.len(), 2, "drain cancelled, no growth");
        assert_eq!(s.active_replicas(), 2);
        // With no draining replica, scale-up grows the vector.
        s.add_replica(SimTime::from_secs(2));
        assert_eq!(s.replicas.len(), 3);
    }

    #[test]
    fn counters_aggregate() {
        let mut s = svc(2);
        s.replicas[0].try_admit();
        s.replicas[1].try_admit();
        s.replicas[1].wait_queue.push_back((0, 0));
        assert_eq!(s.total_admitted(), 2);
        assert_eq!(s.total_waiting(), 1);
        assert_eq!(s.active_cores(), 2);
    }
}
