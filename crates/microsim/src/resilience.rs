//! Platform resilience state: deadline timer queues and circuit breakers.
//!
//! Both structures live in the [`Kernel`](crate::kernel::Kernel) and are
//! part of every snapshot, so their `Clone` impls are written manually
//! per-field and registered in simlint's `snapshot-complete` TARGETS:
//! adding a field without cloning it becomes a CI failure, not a silently
//! diverging fork.
//!
//! # Deadline queues
//!
//! Deadlines come from a *static* set of durations (the distinct
//! `ResiliencePolicy::deadline` values in the config), so expiry times are
//! monotone within each duration class: requests are armed in submission
//! order and all entries of a class share one duration. Each class is a
//! FIFO of `(expiry, job, attempt token)` entries and holds **at most one**
//! `DeadlineCheck` event on the kernel wheel — armed when the class is
//! non-empty, scheduled at the front entry's expiry. Pending wheel events
//! therefore stay O(deadline classes), never O(in-flight requests), which
//! is what keeps 100k-user shedding runs bounded (asserted in the
//! `lab resilience` experiment's guard test). Entries whose job completed
//! or retried before expiry are stale; staleness is detected by comparing
//! the stored per-attempt token against the live job's, so slot reuse can
//! never cancel the wrong request.
//!
//! # The `"kernel/retry"` RNG stream
//!
//! Retry backoff jitter draws come from a dedicated stream labelled
//! `"kernel/retry"`. Sequence layout: exactly **one uniform draw per
//! scheduled retry whose policy has `jitter > 0`**, in retry-scheduling
//! order. Jitter-free retries, failed requests that exhausted their
//! attempts, and everything on the disabled path consume nothing — so a
//! fully disabled config leaves the stream at its seed position and the
//! kernel's behaviour is bit-identical to the pre-resilience platform.

use std::collections::VecDeque;

use simnet::{SimDuration, SimTime};

/// One deadline-duration class: a FIFO of pending expiries.
#[derive(Debug, Clone)]
pub(crate) struct DeadlineClass {
    /// The deadline duration every entry of this class shares.
    pub duration: SimDuration,
    /// Pending `(expiry, job index, per-attempt token)` entries, expiry-
    /// monotone because arming happens in submission order.
    pub entries: VecDeque<(SimTime, usize, u64)>,
    /// Whether a `DeadlineCheck` event for this class is on the wheel.
    /// Invariant: `armed ⟺ !entries.is_empty()` between kernel events.
    pub armed: bool,
}

/// All deadline classes plus the request-type → class mapping.
///
/// Built once at kernel construction from the static deadline set; the
/// hot-path methods never allocate.
#[derive(Debug)]
pub struct DeadlineQueues {
    /// One class per distinct configured deadline duration.
    pub(crate) classes: Vec<DeadlineClass>,
    /// Class index per request type; `u32::MAX` when the type has no
    /// deadline.
    pub(crate) by_type: Vec<u32>,
}

/// Sentinel for "this request type has no deadline".
const NO_CLASS: u32 = u32::MAX;

impl Clone for DeadlineQueues {
    fn clone(&self) -> Self {
        DeadlineQueues {
            classes: self.classes.clone(),
            by_type: self.by_type.clone(),
        }
    }
}

impl DeadlineQueues {
    /// Builds the classes for `deadlines[rt]` (one slot per request type,
    /// `None` = no deadline), deduplicating durations into classes.
    pub(crate) fn new(deadlines: &[Option<SimDuration>]) -> Self {
        let mut classes: Vec<DeadlineClass> = Vec::new();
        let by_type = deadlines
            .iter()
            .map(|d| match d {
                None => NO_CLASS,
                Some(d) => match classes.iter().position(|c| c.duration == *d) {
                    Some(i) => i as u32,
                    None => {
                        classes.push(DeadlineClass {
                            duration: *d,
                            entries: VecDeque::new(),
                            armed: false,
                        });
                        (classes.len() - 1) as u32
                    }
                },
            })
            .collect();
        DeadlineQueues { classes, by_type }
    }

    /// Arms a deadline for `(job, token)` of `request_type` submitted at
    /// `now`. Returns `Some((expiry, class))` when the class was idle and
    /// the caller must schedule its `DeadlineCheck` event; `None` when the
    /// class already has one on the wheel or the type has no deadline.
    pub(crate) fn arm(
        &mut self,
        now: SimTime,
        request_type: u32,
        job: usize,
        token: u64,
    ) -> Option<(SimTime, u32)> {
        let class = *self.by_type.get(request_type as usize)?;
        if class == NO_CLASS {
            return None;
        }
        let c = &mut self.classes[class as usize];
        let expiry = now + c.duration;
        debug_assert!(
            c.entries.back().is_none_or(|(e, _, _)| *e <= expiry),
            "deadline entries must stay expiry-monotone"
        );
        c.entries.push_back((expiry, job, token));
        if c.armed {
            None
        } else {
            c.armed = true;
            Some((expiry, class))
        }
    }

    /// Pops the next entry of `class` due at or before `now`, if any.
    pub(crate) fn pop_due(&mut self, class: u32, now: SimTime) -> Option<(usize, u64)> {
        let c = &mut self.classes[class as usize];
        match c.entries.front() {
            Some((expiry, _, _)) if *expiry <= now => {
                let (_, job, token) = c.entries.pop_front().expect("front exists");
                Some((job, token))
            }
            _ => None,
        }
    }

    /// After draining due entries: returns the next expiry to schedule a
    /// fresh `DeadlineCheck` at (class stays armed), or disarms the class.
    pub(crate) fn re_arm(&mut self, class: u32) -> Option<SimTime> {
        let c = &mut self.classes[class as usize];
        match c.entries.front() {
            Some((expiry, _, _)) => Some(*expiry),
            None => {
                c.armed = false;
                None
            }
        }
    }

    /// Total pending deadline entries (memory-side, not wheel events).
    pub(crate) fn pending(&self) -> usize {
        self.classes.iter().map(|c| c.entries.len()).sum()
    }
}

/// One service's circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BreakerState {
    /// Consecutive failures observed since the last success.
    pub consecutive_failures: u32,
    /// When an open breaker next admits a half-open probe.
    pub open_until: SimTime,
    /// Whether the breaker is open (failing requests fast).
    pub open: bool,
    /// Whether a half-open probe is currently in flight.
    pub probing: bool,
}

impl BreakerState {
    const CLOSED: BreakerState = BreakerState {
        consecutive_failures: 0,
        open_until: SimTime::ZERO,
        open: false,
        probing: false,
    };
}

/// Per-service circuit breakers with shared policy knobs.
#[derive(Debug)]
pub struct BreakerBank {
    /// One breaker per service.
    pub(crate) states: Vec<BreakerState>,
    /// Consecutive failures that trip a breaker; `0` disables the bank.
    pub(crate) threshold: u32,
    /// Open duration before a half-open probe is admitted.
    pub(crate) probe_interval: SimDuration,
}

impl Clone for BreakerBank {
    fn clone(&self) -> Self {
        BreakerBank {
            states: self.states.clone(),
            threshold: self.threshold,
            probe_interval: self.probe_interval,
        }
    }
}

impl BreakerBank {
    /// A bank of closed breakers, one per service.
    pub(crate) fn new(num_services: usize, threshold: u32, probe_interval: SimDuration) -> Self {
        BreakerBank {
            states: vec![BreakerState::CLOSED; num_services],
            threshold,
            probe_interval,
        }
    }

    /// Whether breakers are active at all.
    pub(crate) fn enabled(&self) -> bool {
        self.threshold > 0
    }

    /// Admission check at `service`: `true` lets the request through
    /// (closed breaker, or the one half-open probe an open breaker admits
    /// after its probe interval); `false` fails it fast.
    pub(crate) fn admit(&mut self, service: usize, now: SimTime) -> bool {
        if !self.enabled() {
            return true;
        }
        let s = &mut self.states[service];
        if !s.open {
            return true;
        }
        if now >= s.open_until && !s.probing {
            s.probing = true;
            return true;
        }
        false
    }

    /// A request succeeded at `service`: the breaker closes fully.
    pub(crate) fn on_success(&mut self, service: usize) {
        if !self.enabled() {
            return;
        }
        self.states[service] = BreakerState::CLOSED;
    }

    /// A request failed at `service` (timeout attributed to it, or shed at
    /// its queue). Returns `true` when this failure opened (or re-opened)
    /// the breaker.
    pub(crate) fn on_failure(&mut self, service: usize, now: SimTime) -> bool {
        if !self.enabled() {
            return false;
        }
        let s = &mut self.states[service];
        if s.open {
            // Only the half-open probe's failure re-opens; other failures
            // (straggling timeouts) leave the open state untouched.
            if s.probing {
                s.probing = false;
                s.open_until = now + self.probe_interval;
                return true;
            }
            return false;
        }
        s.consecutive_failures += 1;
        if s.consecutive_failures >= self.threshold {
            s.open = true;
            s.probing = false;
            s.open_until = now + self.probe_interval;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_deduplicate_durations() {
        let d = |ms| Some(SimDuration::from_millis(ms));
        let q = DeadlineQueues::new(&[d(500), None, d(200), d(500)]);
        assert_eq!(q.classes.len(), 2);
        assert_eq!(q.by_type, vec![0, NO_CLASS, 1, 0]);
        assert!(DeadlineQueues::new(&[None, None]).classes.is_empty());
    }

    #[test]
    fn arm_schedules_once_per_class() {
        let q = &mut DeadlineQueues::new(&[Some(SimDuration::from_millis(100))]);
        let t0 = SimTime::from_millis(10);
        let first = q.arm(t0, 0, 7, 70);
        assert_eq!(first, Some((SimTime::from_millis(110), 0)));
        // Second arm while the class is armed: no new wheel event.
        assert_eq!(q.arm(SimTime::from_millis(20), 0, 8, 80), None);
        assert_eq!(q.pending(), 2);
        // Nothing due before the front expiry.
        assert_eq!(q.pop_due(0, SimTime::from_millis(109)), None);
        assert_eq!(q.pop_due(0, SimTime::from_millis(110)), Some((7, 70)));
        // Re-arm returns the next front expiry...
        assert_eq!(q.re_arm(0), Some(SimTime::from_millis(120)));
        assert_eq!(q.pop_due(0, SimTime::from_millis(120)), Some((8, 80)));
        // ...and disarms once the class drains.
        assert_eq!(q.re_arm(0), None);
        assert!(!q.classes[0].armed);
        assert!(q.arm(SimTime::from_millis(200), 0, 9, 90).is_some());
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let bank = &mut BreakerBank::new(2, 3, SimDuration::from_secs(1));
        let t = SimTime::from_secs(10);
        assert!(bank.admit(0, t));
        assert!(!bank.on_failure(0, t));
        assert!(!bank.on_failure(0, t));
        // Third consecutive failure trips it.
        assert!(bank.on_failure(0, t));
        assert!(!bank.admit(0, t), "open breaker fails fast");
        // Sibling service is independent.
        assert!(bank.admit(1, t));
        // After the probe interval exactly one probe is admitted.
        let later = t + SimDuration::from_secs(1);
        assert!(bank.admit(0, later));
        assert!(!bank.admit(0, later), "only one half-open probe");
        // Probe failure re-opens; probe success closes.
        assert!(bank.on_failure(0, later));
        assert!(!bank.admit(0, later));
        let again = later + SimDuration::from_secs(1);
        assert!(bank.admit(0, again));
        bank.on_success(0);
        assert!(bank.admit(0, again));
        assert_eq!(bank.states[0], BreakerState::CLOSED);
    }

    #[test]
    fn disabled_bank_admits_everything() {
        let bank = &mut BreakerBank::new(1, 0, SimDuration::ZERO);
        assert!(!bank.enabled());
        for _ in 0..10 {
            assert!(!bank.on_failure(0, SimTime::ZERO));
        }
        assert!(bank.admit(0, SimTime::ZERO));
    }
}
