//! The top-level simulation: kernel plus registered agents.

use callgraph::Topology;
use simnet::SimTime;

use crate::agent::{Agent, AgentId, SimCtx};
use crate::config::SimConfig;
use crate::kernel::Kernel;
use crate::metrics::Metrics;
use crate::snapshot::{SimSnapshot, SnapshotError};

/// A runnable microservice-platform simulation.
///
/// Construct, register agents, then advance simulated time with
/// [`Simulation::run_until`] (which may be called repeatedly — e.g. run the
/// baseline for a while, inspect metrics, then keep going with an attack
/// agent added).
pub struct Simulation {
    kernel: Kernel,
    agents: Vec<Option<Box<dyn Agent>>>,
    started: Vec<bool>,
    /// Reused buffer for outbox batches (swapped with the kernel outbox so
    /// neither side reallocates in the steady state).
    outbox_scratch: Vec<(AgentId, crate::job::Response)>,
}

impl Simulation {
    /// Creates a simulation of `topology` with the given configuration.
    pub fn new(topology: Topology, cfg: SimConfig) -> Self {
        Simulation {
            kernel: Kernel::new(topology, cfg),
            agents: Vec::new(),
            started: Vec::new(),
            outbox_scratch: Vec::new(),
        }
    }

    /// Registers an agent. Its [`Agent::start`] runs at the beginning of
    /// the next [`Simulation::run_until`] call (at the then-current time).
    pub fn add_agent(&mut self, agent: Box<dyn Agent>) -> AgentId {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(Some(agent));
        self.started.push(false);
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// The application topology (admin view).
    pub fn topology(&self) -> &Topology {
        self.kernel.topology()
    }

    /// Metrics collected so far (admin view).
    pub fn metrics(&self) -> &Metrics {
        self.kernel.metrics()
    }

    /// Active replica count of a service (admin view).
    pub fn active_replicas(&self, service: callgraph::ServiceId) -> usize {
        self.kernel.active_replicas(service)
    }

    /// Advances simulated time to `until`, dispatching platform events and
    /// agent callbacks in deterministic order.
    ///
    /// # Panics
    ///
    /// Panics if `until` is in the past.
    pub fn run_until(&mut self, until: SimTime) {
        assert!(until >= self.kernel.now(), "cannot run backwards in time");
        // Start any agents registered since the last run.
        for i in 0..self.agents.len() {
            if !self.started[i] {
                self.started[i] = true;
                self.with_agent(i, super::agent::Agent::start);
                self.drain_outbox();
            }
        }
        use crate::kernel::PumpResult;
        loop {
            match self.kernel.pump(until) {
                PumpResult::Wake(agent, token) => {
                    self.with_agent(agent.index(), |a, ctx| a.on_wake(ctx, token));
                    self.drain_outbox();
                }
                PumpResult::Responses => self.drain_outbox(),
                PumpResult::Idle => break,
            }
        }
    }

    /// Runs an agent callback with a context over the kernel. The agent is
    /// temporarily taken out of the table so the kernel can be borrowed
    /// mutably inside the callback.
    fn with_agent<F>(&mut self, index: usize, f: F)
    where
        F: FnOnce(&mut dyn Agent, &mut SimCtx<'_>),
    {
        let mut agent = self.agents[index].take().expect("agent re-entered");
        {
            let mut ctx = SimCtx {
                kernel: &mut self.kernel,
                agent: AgentId(index as u32),
            };
            f(agent.as_mut(), &mut ctx);
        }
        self.agents[index] = Some(agent);
    }

    /// Delivers completed responses to their submitting agents. Agents may
    /// submit further requests from the callback; those cascade within the
    /// same timestamp.
    fn drain_outbox(&mut self) {
        while !self.kernel.outbox.is_empty() {
            let mut batch = std::mem::take(&mut self.outbox_scratch);
            std::mem::swap(&mut batch, &mut self.kernel.outbox);
            for (agent, response) in batch.drain(..) {
                self.with_agent(agent.index(), |a, ctx| a.on_response(ctx, &response));
            }
            self.outbox_scratch = batch;
        }
    }

    /// Captures the complete live state of the simulation — kernel and all
    /// registered agents — into a cheaply cloneable [`SimSnapshot`].
    ///
    /// A simulation forked from the snapshot with
    /// [`Simulation::from_snapshot`] replays the future **bit-identically**
    /// to this one: same events, same RNG draws, same metrics.
    ///
    /// # Errors
    ///
    /// Fails if any registered agent does not support snapshotting (its
    /// [`Agent::snapshot`] returns `None`), naming the agent's index.
    pub fn checkpoint(&self) -> Result<SimSnapshot, SnapshotError> {
        let mut agents = Vec::with_capacity(self.agents.len());
        for (index, slot) in self.agents.iter().enumerate() {
            let agent = slot.as_ref().expect("checkpoint during agent callback");
            match agent.snapshot() {
                Some(state) => agents.push(state),
                None => return Err(SnapshotError::UnsupportedAgent { index }),
            }
        }
        Ok(SimSnapshot {
            kernel: self.kernel.clone(),
            agents,
            started: self.started.clone(),
        })
    }

    /// Forks a new simulation from `snapshot`, resuming at the snapshot's
    /// simulated time. The snapshot is borrowed and can be forked again.
    pub fn from_snapshot(snapshot: &SimSnapshot) -> Simulation {
        Simulation {
            kernel: snapshot.kernel.clone(),
            agents: snapshot.agents.iter().map(|s| Some(s.restore())).collect(),
            started: snapshot.started.clone(),
            outbox_scratch: Vec::new(),
        }
    }

    /// Number of events pending in the calendar (used by the
    /// snapshot-equivalence tests).
    pub fn pending_events(&self) -> usize {
        self.kernel.pending_events()
    }

    /// Fingerprints of the kernel's internal RNG streams (demand, trace),
    /// without advancing them. Equal fingerprints mean the streams will
    /// produce identical draw sequences.
    pub fn rng_fingerprint(&self) -> (u64, u64) {
        self.kernel.rng_fingerprint()
    }

    /// Number of pending per-attempt deadline entries (off-wheel
    /// bookkeeping; the leak guards assert this stays bounded).
    pub fn pending_deadlines(&self) -> usize {
        self.kernel.pending_deadlines()
    }

    /// Finishes the run and takes the metrics out.
    pub fn into_metrics(self) -> Metrics {
        self.kernel.into_metrics()
    }

    /// Borrows a registered agent back (e.g. to read results a probe agent
    /// accumulated). Returns `None` for an unknown id.
    pub fn agent(&self, id: AgentId) -> Option<&dyn Agent> {
        self.agents.get(id.index()).and_then(|a| a.as_deref())
    }

    /// Mutable variant of [`Simulation::agent`].
    pub fn agent_mut(&mut self, id: AgentId) -> Option<&mut (dyn Agent + '_)> {
        match self.agents.get_mut(id.index()) {
            Some(Some(a)) => Some(a.as_mut()),
            _ => None,
        }
    }

    /// Borrows an agent back with its concrete type — the way experiments
    /// read collected results out of probes and user populations.
    ///
    /// Returns `None` for an unknown id or a type mismatch.
    pub fn agent_as<T: Agent>(&self, id: AgentId) -> Option<&T> {
        let agent = self.agents.get(id.index())?.as_deref()?;
        (agent as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Mutable variant of [`Simulation::agent_as`] (needed for lazy
    /// percentile queries on collected samples).
    pub fn agent_as_mut<T: Agent>(&mut self, id: AgentId) -> Option<&mut T> {
        let agent = self.agents.get_mut(id.index())?.as_deref_mut()?;
        (agent as &mut dyn std::any::Any).downcast_mut::<T>()
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.kernel.now())
            .field("agents", &self.agents.len())
            .finish()
    }
}
