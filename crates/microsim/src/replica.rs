//! One container replica: a worker-thread pool in front of a small CPU.

use std::collections::VecDeque;

use simnet::{SimDuration, SimTime};

use crate::job::Phase;

/// Key identifying a pending compute segment: which job and which phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Segment {
    pub job: usize,
    pub step: usize,
    pub phase: Phase,
    pub duration: SimDuration,
}

/// A single container replica of a microservice.
///
/// Two nested queues model the paper's service stack:
///
/// * the **thread pool** (`threads` slots): a request must hold a slot from
///   admission until it replies, *including* while its downstream RPC is
///   outstanding — this produces cross-tier queue overflow;
/// * the **CPU** (`cores` cores): admitted requests' compute segments run
///   FIFO on the cores; saturation here is a millibottleneck.
#[derive(Debug, Clone)]
pub(crate) struct Replica {
    /// Worker-thread slots.
    pub threads: u32,
    /// CPU cores.
    pub cores: u32,
    /// Currently admitted requests (each holds one thread slot).
    pub admitted: u32,
    /// Requests waiting for a thread slot: (job index, step index).
    pub wait_queue: VecDeque<(usize, usize)>,
    /// Compute segments waiting for a core.
    pub cpu_queue: VecDeque<Segment>,
    /// Cores currently executing a segment.
    pub busy_cores: u32,
    /// Accumulated core-busy time since the accumulator was last drained.
    pub busy_acc: SimDuration,
    /// Last time `busy_acc` was brought up to date.
    pub last_update: SimTime,
    /// A draining replica admits no new work and is removed once idle
    /// (graceful scale-down).
    pub draining: bool,
}

impl Replica {
    pub(crate) fn new(threads: u32, cores: u32, now: SimTime) -> Self {
        Replica {
            threads,
            cores,
            admitted: 0,
            wait_queue: VecDeque::new(), // simlint: allow(hot-path-alloc) — scale-up is a rare control-plane event
            cpu_queue: VecDeque::new(), // simlint: allow(hot-path-alloc) — scale-up is a rare control-plane event
            busy_cores: 0,
            busy_acc: SimDuration::ZERO,
            last_update: now,
            draining: false,
        }
    }

    /// Brings the busy-time accumulator up to `now`.
    pub(crate) fn update_busy(&mut self, now: SimTime) {
        let delta = now.saturating_since(self.last_update);
        if !delta.is_zero() {
            self.busy_acc += delta * u64::from(self.busy_cores);
            self.last_update = now;
        }
    }

    /// Drains and returns the busy-time accumulated since the last drain.
    pub(crate) fn take_busy(&mut self, now: SimTime) -> SimDuration {
        self.update_busy(now);
        std::mem::replace(&mut self.busy_acc, SimDuration::ZERO)
    }

    /// Tries to claim a thread slot. Returns `true` on success.
    pub(crate) fn try_admit(&mut self) -> bool {
        if self.draining || self.admitted >= self.threads {
            return false;
        }
        self.admitted += 1;
        true
    }

    /// Releases a thread slot (caller must have been admitted).
    pub(crate) fn release(&mut self) {
        debug_assert!(self.admitted > 0, "release without admission");
        self.admitted = self.admitted.saturating_sub(1);
    }

    /// Offers a compute segment to the CPU. Returns `true` when a core was
    /// free and the caller must schedule the segment's completion; `false`
    /// when the segment was queued behind busy cores.
    pub(crate) fn offer_segment(&mut self, seg: Segment, now: SimTime) -> bool {
        if self.busy_cores < self.cores {
            self.update_busy(now);
            self.busy_cores += 1;
            true
        } else {
            self.cpu_queue.push_back(seg);
            false
        }
    }

    /// Marks a running segment as finished. Returns the next queued
    /// segment to start, if any (the core is handed over directly).
    pub(crate) fn finish_segment(&mut self, now: SimTime) -> Option<Segment> {
        self.update_busy(now);
        match self.cpu_queue.pop_front() {
            Some(next) => Some(next), // core stays busy
            None => {
                debug_assert!(self.busy_cores > 0, "finish with no busy core");
                self.busy_cores = self.busy_cores.saturating_sub(1);
                None
            }
        }
    }

    /// Total work admitted or waiting — the load-balancer's load signal.
    pub(crate) fn load(&self) -> usize {
        self.admitted as usize + self.wait_queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(job: usize) -> Segment {
        Segment {
            job,
            step: 0,
            phase: Phase::Pre,
            duration: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn admission_respects_thread_pool() {
        let mut r = Replica::new(2, 1, SimTime::ZERO);
        assert!(r.try_admit());
        assert!(r.try_admit());
        assert!(!r.try_admit());
        r.release();
        assert!(r.try_admit());
    }

    #[test]
    fn draining_blocks_admission() {
        let mut r = Replica::new(2, 1, SimTime::ZERO);
        r.draining = true;
        assert!(!r.try_admit());
    }

    #[test]
    fn cpu_queues_when_cores_busy() {
        let mut r = Replica::new(8, 1, SimTime::ZERO);
        assert!(r.offer_segment(seg(0), SimTime::ZERO));
        assert!(!r.offer_segment(seg(1), SimTime::ZERO));
        assert_eq!(r.cpu_queue.len(), 1);
        // Finishing the first hands the core to the queued one.
        let next = r.finish_segment(SimTime::from_millis(1));
        assert_eq!(next.unwrap().job, 1);
        assert_eq!(r.busy_cores, 1);
        assert!(r.finish_segment(SimTime::from_millis(2)).is_none());
        assert_eq!(r.busy_cores, 0);
    }

    #[test]
    fn busy_accounting_tracks_core_time() {
        let mut r = Replica::new(8, 2, SimTime::ZERO);
        assert!(r.offer_segment(seg(0), SimTime::ZERO));
        assert!(r.offer_segment(seg(1), SimTime::ZERO));
        // Two cores busy for 5 ms -> 10 ms of core time.
        let busy = r.take_busy(SimTime::from_millis(5));
        assert_eq!(busy, SimDuration::from_millis(10));
        // Accumulator was drained.
        let busy2 = r.take_busy(SimTime::from_millis(5));
        assert_eq!(busy2, SimDuration::ZERO);
    }

    #[test]
    fn load_counts_waiting_and_admitted() {
        let mut r = Replica::new(1, 1, SimTime::ZERO);
        r.try_admit();
        r.wait_queue.push_back((1, 0));
        assert_eq!(r.load(), 2);
    }
}
