//! The cloud auto-scaler.
//!
//! Reproduces the policy from Section V-B of the paper: 1 s-granularity CPU
//! metrics drive scaling — scale up when utilisation exceeds 70 % for 30
//! consecutive seconds, scale down below 30 % for 30 consecutive seconds.
//! Because millibottlenecks last < 500 ms, the 1 s averages stay low and
//! Grunt never triggers a scale-up (Fig 14).

use callgraph::ServiceId;
use serde::{Deserialize, Serialize};
use simnet::{SimDuration, SimTime};

/// Scaling policy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoScalePolicy {
    /// Scale up when 1 s CPU utilisation exceeds this for
    /// [`AutoScalePolicy::sustain_secs`] consecutive seconds.
    pub up_threshold: f64,
    /// Scale down when 1 s CPU utilisation is below this for
    /// [`AutoScalePolicy::sustain_secs`] consecutive seconds.
    pub down_threshold: f64,
    /// Required consecutive seconds beyond a threshold.
    pub sustain_secs: u32,
    /// Delay between the scaling decision and the new replica serving
    /// traffic (container/VM provisioning).
    pub provision_delay: SimDuration,
    /// Upper bound on replicas per service.
    pub max_replicas: u32,
}

impl AutoScalePolicy {
    /// The paper's policy: 70 % up / 30 % down over 30 s, with a 10 s
    /// provisioning delay and at most 8 replicas per service.
    pub fn paper_default() -> Self {
        AutoScalePolicy {
            up_threshold: 0.70,
            down_threshold: 0.30,
            sustain_secs: 30,
            provision_delay: SimDuration::from_secs(10),
            max_replicas: 8,
        }
    }
}

impl Default for AutoScalePolicy {
    fn default() -> Self {
        AutoScalePolicy::paper_default()
    }
}

/// Direction of a completed scaling action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingDirection {
    /// A replica was added.
    Up,
    /// A replica was drained and removed.
    Down,
}

/// One completed scaling action, recorded for the experiment reports
/// (Fig 15b plots these).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingAction {
    /// When the action took effect.
    pub at: SimTime,
    /// The service that was scaled.
    pub service: ServiceId,
    /// Up or down.
    pub direction: ScalingDirection,
    /// Active replica count after the action.
    pub replicas_after: u32,
}

/// Pure decision logic: feed one 1 s utilisation sample for a service and
/// learn whether a scaling action should start.
///
/// The kernel owns the per-service hot/cold counters (in `Service`), calls
/// this on every 1 s boundary and handles provisioning delays itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No action.
    Hold,
    /// Begin provisioning one replica.
    Up,
    /// Drain one replica.
    Down,
}

/// Evaluates the policy for one service given the new 1 s utilisation
/// sample and the persistent hot/cold counters (mutated in place).
pub fn decide(
    policy: &AutoScalePolicy,
    util: f64,
    hot_seconds: &mut u32,
    cold_seconds: &mut u32,
) -> ScaleDecision {
    if util > policy.up_threshold {
        *hot_seconds += 1;
        *cold_seconds = 0;
    } else if util < policy.down_threshold {
        *cold_seconds += 1;
        *hot_seconds = 0;
    } else {
        *hot_seconds = 0;
        *cold_seconds = 0;
    }
    if *hot_seconds >= policy.sustain_secs {
        *hot_seconds = 0;
        return ScaleDecision::Up;
    }
    if *cold_seconds >= policy.sustain_secs {
        *cold_seconds = 0;
        return ScaleDecision::Down;
    }
    ScaleDecision::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_heat_scales_up() {
        let p = AutoScalePolicy {
            sustain_secs: 3,
            ..AutoScalePolicy::paper_default()
        };
        let (mut hot, mut cold) = (0, 0);
        assert_eq!(decide(&p, 0.9, &mut hot, &mut cold), ScaleDecision::Hold);
        assert_eq!(decide(&p, 0.9, &mut hot, &mut cold), ScaleDecision::Hold);
        assert_eq!(decide(&p, 0.9, &mut hot, &mut cold), ScaleDecision::Up);
        // Counter reset after firing.
        assert_eq!(decide(&p, 0.9, &mut hot, &mut cold), ScaleDecision::Hold);
    }

    #[test]
    fn interrupted_heat_resets() {
        let p = AutoScalePolicy {
            sustain_secs: 3,
            ..AutoScalePolicy::paper_default()
        };
        let (mut hot, mut cold) = (0, 0);
        decide(&p, 0.9, &mut hot, &mut cold);
        decide(&p, 0.9, &mut hot, &mut cold);
        // One calm second (between thresholds) resets the streak — this is
        // exactly why sub-second millibottlenecks never trigger scaling.
        decide(&p, 0.5, &mut hot, &mut cold);
        assert_eq!(decide(&p, 0.9, &mut hot, &mut cold), ScaleDecision::Hold);
        assert_eq!(hot, 1);
    }

    #[test]
    fn sustained_cold_scales_down() {
        let p = AutoScalePolicy {
            sustain_secs: 2,
            ..AutoScalePolicy::paper_default()
        };
        let (mut hot, mut cold) = (0, 0);
        assert_eq!(decide(&p, 0.1, &mut hot, &mut cold), ScaleDecision::Hold);
        assert_eq!(decide(&p, 0.1, &mut hot, &mut cold), ScaleDecision::Down);
    }

    #[test]
    fn mid_band_holds_forever() {
        let p = AutoScalePolicy::paper_default();
        let (mut hot, mut cold) = (0, 0);
        for _ in 0..100 {
            assert_eq!(decide(&p, 0.5, &mut hot, &mut cold), ScaleDecision::Hold);
        }
    }
}
