//! The workspace self-check — the tree this crate lives in must lint clean —
//! plus mutation tests proving the snapshot-completeness rule bites: delete
//! one field-clone line from a real snapshot path and the rule must fail.

use std::fs;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    simlint::find_workspace_root(&manifest).expect("workspace root above simlint")
}

#[test]
fn workspace_is_clean() {
    let diags = simlint::lint_workspace(&workspace_root()).unwrap();
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Runs `check_target` for one tracked struct after deleting every source
/// line of the clone file that contains `needle`, returning the rendered
/// diagnostics.
fn check_with_deleted_line(struct_name: &str, needle: &str) -> Vec<String> {
    let root = workspace_root();
    let target = simlint::snapshot::TARGETS
        .iter()
        .find(|t| t.struct_name == struct_name)
        .expect("tracked target");
    let struct_src = fs::read_to_string(root.join(target.struct_file)).unwrap();
    let clone_src = fs::read_to_string(root.join(target.clone_file)).unwrap();
    let mutated: String = clone_src
        .lines()
        .filter(|l| !l.contains(needle))
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(mutated, clone_src, "needle `{needle}` not found to delete");
    let struct_toks = simlint::rules::strip_cfg_test(simlint::lexer::lex(&struct_src).tokens);
    let clone_toks = simlint::rules::strip_cfg_test(simlint::lexer::lex(&mutated).tokens);
    let mut out = Vec::new();
    simlint::snapshot::check_target(target, &struct_toks, &clone_toks, &mut out);
    out.iter().map(ToString::to_string).collect()
}

#[test]
fn deleting_a_kernel_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("Kernel", "queue: self.queue.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`queue`")),
        "expected a snapshot-complete finding for `queue`, got: {diags:?}"
    );
}

#[test]
fn deleting_an_event_queue_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("EventQueue", "next_seq: self.next_seq");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`next_seq`")),
        "expected a snapshot-complete finding for `next_seq`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_metrics_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("Metrics", "request_log: self.request_log.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`request_log`")),
        "expected a snapshot-complete finding for `request_log`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_seg_samples_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("SegSamples", "tail_sorted: self.tail_sorted.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`tail_sorted`")),
        "expected a snapshot-complete finding for `tail_sorted`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_seg_store_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("SegStore", "seg_cap: self.seg_cap");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`seg_cap`")),
        "expected a snapshot-complete finding for `seg_cap`, got: {diags:?}"
    );
}
