//! The workspace self-check — the tree this crate lives in must lint clean —
//! plus mutation tests proving every workspace-level rule bites on the
//! *real* tree: delete one field-clone line and `snapshot-complete` fails;
//! strip an `Arc::make_mut` and `cow-discipline` fails; inject an
//! allocation into a hot function and `hot-path-alloc` fails; rename a
//! `_naive` twin away and `naive-twin` fails.

use std::fs;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    simlint::find_workspace_root(&manifest).expect("workspace root above simlint")
}

#[test]
fn workspace_is_clean() {
    let diags = simlint::lint_workspace(&workspace_root()).unwrap();
    assert!(
        diags.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Lints the real workspace with one file's text rewritten by `patch`,
/// returning the rendered diagnostics. The patch must change the text —
/// a no-op means the mutation site moved and the test is stale.
fn lint_with_patched_file(path: &str, patch: impl Fn(&str) -> String) -> Vec<String> {
    let (mut sources, test_sources) = simlint::Model::load_sources(&workspace_root()).unwrap();
    let entry = sources
        .iter_mut()
        .find(|(p, _)| p == path)
        .unwrap_or_else(|| panic!("{path} not in the scanned workspace"));
    let patched = patch(&entry.1);
    assert_ne!(patched, entry.1, "patch for {path} matched nothing");
    entry.1 = patched;
    let model = simlint::Model::from_sources(&sources, &test_sources);
    simlint::lint_model(&model)
        .iter()
        .map(ToString::to_string)
        .collect()
}

#[test]
fn stripping_make_mut_from_a_spine_mutation_is_caught() {
    let diags = lint_with_patched_file("crates/microsim/src/seglog.rs", |src| {
        src.replace(
            "Arc::make_mut(&mut self.sealed).push(Arc::new(seg));",
            "self.sealed.push(Arc::new(seg));",
        )
    });
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[cow-discipline]") && d.contains("sealed")),
        "expected a cow-discipline finding for the undisciplined push, got: {diags:?}"
    );
}

#[test]
fn get_mut_on_a_spine_is_caught() {
    let diags = lint_with_patched_file("crates/simnet/src/stats.rs", |src| {
        src.replace(
            "std::sync::Arc::make_mut(&mut self.sealed).push(seg);",
            "std::sync::Arc::get_mut(&mut self.sealed).unwrap().push(seg);",
        )
    });
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[cow-discipline]") && d.contains("get_mut")),
        "expected a cow-discipline finding for the get_mut sidestep, got: {diags:?}"
    );
}

#[test]
fn injecting_an_allocation_into_a_hot_function_is_caught() {
    let diags = lint_with_patched_file("crates/microsim/src/kernel.rs", |src| {
        src.replace(
            "fn reroute_drained_waiters(&mut self, sidx: usize) -> usize {",
            "fn reroute_drained_waiters(&mut self, sidx: usize) -> usize {\n        let scratch: Vec<u8> = Vec::with_capacity(64);\n        drop(scratch);",
        )
    });
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[hot-path-alloc]") && d.contains("Vec::with_capacity")),
        "expected a hot-path-alloc finding for the injected allocation, got: {diags:?}"
    );
}

#[test]
fn renaming_a_naive_twin_away_is_caught() {
    let diags = lint_with_patched_file("crates/telemetry/src/latency.rs", |src| {
        src.replace("pub fn compute_naive(", "pub fn compute_reference(")
    });
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[naive-twin]") && d.contains("compute_naive")),
        "expected a naive-twin finding for the missing twin, got: {diags:?}"
    );
}

#[test]
fn renaming_a_hot_entry_point_is_itself_a_finding() {
    // Config drift must not silently hollow the rule out: when a seeded
    // entry point no longer resolves, simlint says so instead of passing.
    let diags = lint_with_patched_file("crates/microsim/src/kernel.rs", |src| {
        src.replace("pub(crate) fn pump(", "pub(crate) fn pump_events(")
    });
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[hot-path-alloc]") && d.contains("Kernel::pump")),
        "expected a seed-drift finding for Kernel::pump, got: {diags:?}"
    );
}

/// Runs `check_target` for one tracked struct after deleting every source
/// line of the clone file that contains `needle`, returning the rendered
/// diagnostics.
fn check_with_deleted_line(struct_name: &str, needle: &str) -> Vec<String> {
    let root = workspace_root();
    let target = simlint::snapshot::TARGETS
        .iter()
        .find(|t| t.struct_name == struct_name)
        .expect("tracked target");
    let struct_src = fs::read_to_string(root.join(target.struct_file)).unwrap();
    let clone_src = fs::read_to_string(root.join(target.clone_file)).unwrap();
    let mutated: String = clone_src
        .lines()
        .filter(|l| !l.contains(needle))
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(mutated, clone_src, "needle `{needle}` not found to delete");
    let struct_toks = simlint::rules::strip_cfg_test(simlint::lexer::lex(&struct_src).tokens);
    let clone_toks = simlint::rules::strip_cfg_test(simlint::lexer::lex(&mutated).tokens);
    let mut out = Vec::new();
    simlint::snapshot::check_target(target, &struct_toks, &clone_toks, &mut out);
    out.iter().map(ToString::to_string).collect()
}

#[test]
fn deleting_a_kernel_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("Kernel", "queue: self.queue.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`queue`")),
        "expected a snapshot-complete finding for `queue`, got: {diags:?}"
    );
}

#[test]
fn deleting_an_event_queue_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("EventQueue", "next_seq: self.next_seq");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`next_seq`")),
        "expected a snapshot-complete finding for `next_seq`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_metrics_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("Metrics", "request_log: self.request_log.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`request_log`")),
        "expected a snapshot-complete finding for `request_log`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_seg_samples_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("SegSamples", "tail_sorted: self.tail_sorted.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`tail_sorted`")),
        "expected a snapshot-complete finding for `tail_sorted`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_seg_store_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("SegStore", "seg_cap: self.seg_cap");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`seg_cap`")),
        "expected a snapshot-complete finding for `seg_cap`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_think_arena_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("ThinkArena", "overflow: self.overflow.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`overflow`")),
        "expected a snapshot-complete finding for `overflow`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_population_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("ClosedLoopUsers", "arena: self.arena.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`arena`")),
        "expected a snapshot-complete finding for `arena`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_deadline_queue_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("DeadlineQueues", "classes: self.classes.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`classes`")),
        "expected a snapshot-complete finding for `classes`, got: {diags:?}"
    );
}

#[test]
fn deleting_a_breaker_bank_field_clone_line_is_caught() {
    let diags = check_with_deleted_line("BreakerBank", "states: self.states.clone()");
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[snapshot-complete]") && d.contains("`states`")),
        "expected a snapshot-complete finding for `states`, got: {diags:?}"
    );
}

#[test]
fn injecting_an_allocation_into_the_deadline_arm_path_is_caught() {
    // DeadlineQueues::arm is a HOT_SEEDS entry of its own: every deadlined
    // submission runs it, so it must stay allocation-free.
    let diags = lint_with_patched_file("crates/microsim/src/resilience.rs", |src| {
        src.replace(
            ") -> Option<(SimTime, u32)> {",
            ") -> Option<(SimTime, u32)> {\n        let scratch: Vec<u8> = Vec::with_capacity(64);\n        drop(scratch);",
        )
    });
    assert!(
        diags.iter().any(|d| d.contains("[hot-path-alloc]")
            && d.contains("Vec::with_capacity")
            && d.contains("resilience.rs")),
        "expected a hot-path-alloc finding in the deadline arm path, got: {diags:?}"
    );
}

#[test]
fn injecting_an_allocation_into_the_failure_path_is_caught() {
    // Kernel::fail_attempt runs per timeout/shed/rejection — O(requests)
    // on a shedding topology.
    let diags = lint_with_patched_file("crates/microsim/src/kernel.rs", |src| {
        src.replace(
            "        reap_now: bool,\n    ) {",
            "        reap_now: bool,\n    ) {\n        let label = format!(\"job {job}\");\n        drop(label);",
        )
    });
    assert!(
        diags.iter().any(|d| d.contains("[hot-path-alloc]")
            && d.contains("`format!`")
            && d.contains("kernel.rs")),
        "expected a hot-path-alloc finding in the failure path, got: {diags:?}"
    );
}

#[test]
fn injecting_an_allocation_into_the_timer_arena_is_caught() {
    // ThinkArena::schedule is reachable only through the population seeds;
    // this proves the new HOT_SEEDS entries actually extend the hot set.
    let diags = lint_with_patched_file("crates/workload/src/arena.rs", |src| {
        src.replace(
            "pub fn schedule(&mut self, now: SimTime, slot: u32, tick: u64) -> bool {",
            "pub fn schedule(&mut self, now: SimTime, slot: u32, tick: u64) -> bool {\n        let scratch: Vec<u8> = Vec::with_capacity(64);\n        drop(scratch);",
        )
    });
    assert!(
        diags.iter().any(|d| d.contains("[hot-path-alloc]")
            && d.contains("Vec::with_capacity")
            && d.contains("arena.rs")),
        "expected a hot-path-alloc finding in the timer arena, got: {diags:?}"
    );
}

#[test]
fn injecting_an_allocation_into_the_population_wake_path_is_caught() {
    let diags = lint_with_patched_file("crates/workload/src/users.rs", |src| {
        src.replace(
            "fn fire_slot(&mut self, ctx: &mut SimCtx<'_>, slot: u32) {",
            "fn fire_slot(&mut self, ctx: &mut SimCtx<'_>, slot: u32) {\n        let label = format!(\"slot {slot}\");\n        drop(label);",
        )
    });
    assert!(
        diags.iter().any(|d| d.contains("[hot-path-alloc]")
            && d.contains("`format!`")
            && d.contains("users.rs")),
        "expected a hot-path-alloc finding on the wake path, got: {diags:?}"
    );
}

#[test]
fn get_mut_on_the_population_model_spine_is_caught() {
    // ClosedLoopUsers joins the COW registry through its Arc-typed `model`
    // field (snapshot TARGETS with Arc fields are auto-registered).
    let diags = lint_with_patched_file("crates/workload/src/users.rs", |src| {
        src.replace(
            "fn fire_slot(&mut self, ctx: &mut SimCtx<'_>, slot: u32) {",
            "fn fire_slot(&mut self, ctx: &mut SimCtx<'_>, slot: u32) {\n        let _ = std::sync::Arc::get_mut(&mut self.model);",
        )
    });
    assert!(
        diags
            .iter()
            .any(|d| d.contains("[cow-discipline]") && d.contains("model")),
        "expected a cow-discipline finding for the model spine, got: {diags:?}"
    );
}
