//! Property tests for the hand-rolled lexer: arbitrary input never panics,
//! and the byte spans it reports are well-formed — in bounds, in order,
//! non-overlapping, and consistent with the reported line numbers.

use proptest::prelude::*;
use simlint::lexer::{lex, TokenKind};

proptest! {
    /// The lexer (and the full single-file lint pipeline on top of it)
    /// total-functions over arbitrary byte soup: truncated block comments,
    /// unterminated strings, stray quotes, non-UTF-8 bytes smoothed by
    /// `from_utf8_lossy` — nothing panics.
    #[test]
    fn lexing_arbitrary_bytes_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        prop_assert!(lexed.tokens.len() <= src.len() + 1);
        let _ = simlint::lint_source("fuzz.rs", &src);
    }

    /// Spans are strictly ordered and non-overlapping, stay inside the
    /// source, land on valid UTF-8 boundaries, and agree with both the
    /// token payload and the reported 1-based line number.
    #[test]
    fn spans_are_ordered_in_bounds_and_line_consistent(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let lexed = lex(&src);
        let mut prev_end = 0u32;
        let mut prev_line = 1u32;
        for tok in &lexed.tokens {
            prop_assert!(tok.start < tok.end, "empty span {}..{}", tok.start, tok.end);
            prop_assert!(tok.start >= prev_end, "overlap: {} < {}", tok.start, prev_end);
            prop_assert!((tok.end as usize) <= src.len(), "span past EOF");
            prop_assert!(src.is_char_boundary(tok.start as usize));
            prop_assert!(src.is_char_boundary(tok.end as usize));
            let text = &src[tok.start as usize..tok.end as usize];
            match &tok.kind {
                TokenKind::Ident(name) => prop_assert_eq!(text, name.as_str()),
                TokenKind::Punct(c) => {
                    let s = c.to_string();
                    prop_assert_eq!(text, s.as_str());
                }
                TokenKind::Num | TokenKind::Lifetime => prop_assert!(!text.is_empty()),
            }
            let line = 1 + src[..tok.start as usize]
                .bytes()
                .filter(|&b| b == b'\n')
                .count() as u32;
            prop_assert_eq!(tok.line, line, "line mismatch for {:?}", tok);
            prop_assert!(tok.line >= prev_line, "lines must be non-decreasing");
            prev_end = tok.end;
            prev_line = tok.line;
        }
    }
}
