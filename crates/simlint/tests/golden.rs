//! Golden-file tests: every fixture under `tests/fixtures/` is linted and
//! its rendered diagnostics compared line-for-line — rule id, file, line —
//! against the checked-in `.expected` file. Regenerate goldens with
//! `SIMLINT_BLESS=1 cargo test -p simlint`.

use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn render(diags: &[simlint::Diagnostic]) -> String {
    let mut s = diags
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    if !s.is_empty() {
        s.push('\n');
    }
    s
}

fn check_golden(name: &str, actual: &str) {
    let golden = fixtures_dir().join(name);
    if std::env::var_os("SIMLINT_BLESS").is_some() {
        fs::write(&golden, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&golden)
        .unwrap_or_else(|_| panic!("missing golden {name}; run with SIMLINT_BLESS=1"));
    assert_eq!(
        actual, expected,
        "diagnostics for {name} diverged from the golden (SIMLINT_BLESS=1 regenerates)"
    );
}

#[test]
fn fixtures_match_goldens() {
    let mut paths: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "fixture corpus is empty");
    for path in paths {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = fs::read_to_string(&path).unwrap();
        let diags = simlint::lint_source(&format!("fixtures/{stem}.rs"), &src);
        check_golden(&format!("{stem}.expected"), &render(&diags));
    }
}

#[test]
fn snapshot_pair_matches_golden() {
    let dir = fixtures_dir();
    let struct_src = fs::read_to_string(dir.join("snapshot_pair_struct.rs")).unwrap();
    let clone_src = fs::read_to_string(dir.join("snapshot_pair_clone.rs")).unwrap();
    let target = simlint::snapshot::SnapshotTarget {
        struct_name: "MiniKernel",
        struct_file: "fixtures/snapshot_pair_struct.rs",
        clone_file: "fixtures/snapshot_pair_clone.rs",
    };
    let struct_toks = simlint::rules::strip_cfg_test(simlint::lexer::lex(&struct_src).tokens);
    let clone_toks = simlint::rules::strip_cfg_test(simlint::lexer::lex(&clone_src).tokens);
    let mut out = Vec::new();
    simlint::snapshot::check_target(&target, &struct_toks, &clone_toks, &mut out);
    out.sort();
    check_golden("snapshot_pair.expected", &render(&out));
}
