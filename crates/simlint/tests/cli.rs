//! End-to-end CLI tests: exit codes, `--format`, `--list-rules`, and the
//! `--baseline` suppression flow, all against the `miniws` fixture
//! workspace (which carries one deliberate `nondet-source` violation plus
//! the registry-drift findings a near-empty workspace produces).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn miniws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/miniws")
}

fn simlint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(args)
        .output()
        .expect("spawn simlint")
}

fn root_arg() -> String {
    miniws().to_string_lossy().into_owned()
}

#[test]
fn violations_exit_1_with_sorted_text_findings() {
    let out = simlint(&["--check", "--root", &root_arg()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout.clone()).unwrap();
    assert!(
        stdout.contains("error[nondet-source]") && stdout.contains("core/src/lib.rs:10"),
        "expected the fixture violation, got:\n{stdout}"
    );
    // Deterministic ordering: the rendered (path, line, rule) triples of
    // the findings must already be sorted.
    let keys: Vec<&str> = stdout.lines().collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "text output must be sorted");
    // Byte-for-byte determinism across runs.
    let again = simlint(&["--check", "--root", &root_arg()]);
    assert_eq!(out.stdout, again.stdout);
}

#[test]
fn baseline_built_from_own_output_suppresses_everything() {
    let out = simlint(&["--root", &root_arg()]);
    assert_eq!(out.status.code(), Some(1));
    let baseline = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("miniws.baseline");
    std::fs::write(&baseline, &out.stdout).unwrap();

    let suppressed = simlint(&[
        "--root",
        &root_arg(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    assert_eq!(
        suppressed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&suppressed.stderr)
    );
    let stderr = String::from_utf8(suppressed.stderr).unwrap();
    assert!(
        stderr.contains("baselined finding(s) suppressed"),
        "got: {stderr}"
    );
}

#[test]
fn unreadable_baseline_exits_2() {
    let out = simlint(&["--root", &root_arg(), "--baseline", "/nonexistent/base"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn list_rules_names_every_registered_rule() {
    let out = simlint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    for rule in &simlint::registry::RULES {
        assert!(
            stdout.contains(rule.id) && stdout.contains(rule.severity.as_str()),
            "missing {} in:\n{stdout}",
            rule.id
        );
    }
}

#[test]
fn json_and_sarif_formats_are_machine_readable() {
    let json = simlint(&["--root", &root_arg(), "--format", "json"]);
    assert_eq!(json.status.code(), Some(1));
    let text = String::from_utf8(json.stdout).unwrap();
    assert!(text.trim_end().starts_with('[') && text.trim_end().ends_with(']'));
    assert!(text.contains("\"rule\":\"nondet-source\""));
    assert!(text.contains("\"severity\":\"error\""));

    let sarif = simlint(&["--root", &root_arg(), "--format", "sarif"]);
    assert_eq!(sarif.status.code(), Some(1));
    let text = String::from_utf8(sarif.stdout).unwrap();
    assert!(text.contains("\"version\":\"2.1.0\""));
    assert!(text.contains("\"ruleId\":\"nondet-source\""));
}

#[test]
fn bad_usage_exits_2() {
    assert_eq!(simlint(&["--format", "yaml"]).status.code(), Some(2));
    assert_eq!(simlint(&["--frobnicate"]).status.code(), Some(2));
}
