//! Fixture: the clone half of a tracked snapshot pair — deliberately
//! missing `rng_state`, which `snapshot-complete` must flag. Not compiled —
//! fed to `snapshot::check_target` by `tests/golden.rs`.

impl Clone for MiniKernel {
    fn clone(&self) -> Self {
        MiniKernel {
            now: self.now,
            queue: self.queue.clone(),
        }
    }
}
