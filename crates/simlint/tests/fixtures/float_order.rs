//! Fixture: `float-order` hazards — float reductions whose result depends
//! on hash-iteration order. Not compiled — lexed and linted by
//! `tests/golden.rs`.

use std::collections::HashMap;

fn unstable_mean(weights: &HashMap<u32, f64>) -> f64 {
    let total = weights.values().sum::<f64>();
    total / weights.len() as f64
}

fn unstable_product(factors: &HashMap<u32, f64>) -> f64 {
    factors.values().product::<f64>()
}

fn stable_sum(weights: &HashMap<u32, f64>) -> f64 {
    // Collected and sorted before the reduction. simlint: allow(unordered-iter)
    let mut keys: Vec<u32> = weights.keys().copied().collect();
    keys.sort_unstable();
    keys.iter().map(|k| weights[k]).sum::<f64>()
}

fn integer_sum_is_fine(counts: &HashMap<u32, u64>) -> u64 {
    // Integer addition commutes exactly; only the iteration itself is a
    // hazard. simlint: allow(unordered-iter)
    counts.values().sum::<u64>()
}
