//! Fixture: `unordered-iter` hazards next to their safe counterparts.
//! Not compiled — lexed and linted by `tests/golden.rs`.

use std::collections::{BTreeMap, HashMap};

struct Registry {
    by_name: HashMap<String, u32>,
    ordered: BTreeMap<String, u32>,
}

impl Registry {
    fn hash_order_total(&self) -> u32 {
        let mut sum = 0;
        for (_name, v) in &self.by_name {
            sum += v;
        }
        sum
    }

    fn keyed_lookup(&self, name: &str) -> Option<u32> {
        // Point lookups are order-free: not flagged.
        self.by_name.get(name).copied()
    }

    fn ordered_total(&self) -> u32 {
        // BTreeMap iterates in key order: not flagged.
        self.ordered.values().sum()
    }
}

fn local_map() {
    let mut seen = HashMap::new();
    seen.insert(1u32, 2u32);
    for v in seen.values() {
        let _ = v;
    }
    let drained: Vec<(u32, u32)> = seen.drain().collect();
    let _ = drained;
}

fn allowed_iteration(index: &HashMap<u32, u32>) -> usize {
    // Order-insensitive count. simlint: allow(unordered-iter)
    index.iter().count()
}
