//! Fixture: idiomatic deterministic simulation code — nothing to flag.
//! Not compiled — lexed and linted by `tests/golden.rs`.

use std::collections::BTreeMap;

#[derive(Debug, Clone)]
struct Meter {
    totals: BTreeMap<u32, f64>,
    samples: Vec<f64>,
}

impl Meter {
    fn record(&mut self, key: u32, value: f64) {
        *self.totals.entry(key).or_insert(0.0) += value;
        self.samples.push(value);
    }

    fn grand_total(&self) -> f64 {
        // BTreeMap iterates in key order; Vec in insertion order.
        self.totals.values().sum::<f64>() + self.samples.iter().sum::<f64>()
    }
}

impl Agent for Meter {
    fn start(&mut self, _ctx: &mut SimCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    // Test modules are masked out entirely: wall-clock timing in a test
    // harness is fine.
    #[test]
    fn timing_in_tests_is_ignored() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 1);
    }
}
