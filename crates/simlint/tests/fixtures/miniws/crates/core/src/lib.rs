//! Mini-workspace source with one deliberate determinism hazard; the CLI
//! tests assert simlint finds it, exits nonzero, and that a baseline file
//! built from simlint's own text output suppresses it.

pub fn deterministic_and_fine(x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

pub fn wall_clock_read() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
