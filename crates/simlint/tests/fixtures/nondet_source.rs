//! Fixture: every `nondet-source` hazard, plus the `allow` escape hatch.
//! Not compiled — lexed and linted by `tests/golden.rs`.

fn wall_clock_instant() {
    let t0 = std::time::Instant::now();
    let _ = t0.elapsed();
}

fn wall_clock_system_time() {
    let _stamp = std::time::SystemTime::now();
}

fn os_entropy() {
    let mut rng = rand::thread_rng();
    let _seeded = rand::rngs::StdRng::from_entropy();
    let _ = rng.next_u64();
}

fn environment_read() {
    let _home = std::env::var("HOME");
}

fn raw_thread() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}

fn allowed_wall_clock() {
    // Harness-side timing echo only. simlint: allow(nondet-source)
    let t0 = std::time::Instant::now();
    let _ = t0;
}
