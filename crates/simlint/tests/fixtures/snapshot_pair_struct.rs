//! Fixture: the struct half of a tracked snapshot pair (see
//! `snapshot_pair_clone.rs`). Not compiled — fed to
//! `snapshot::check_target` by `tests/golden.rs`.

struct MiniKernel {
    now: u64,
    queue: Vec<u64>,
    rng_state: u64,
}
