//! Fixture: line-accurate `allow` scoping. A directive suppresses matching
//! findings on its own line and on the immediately following line — nothing
//! further. Unknown rule names are `bad-allow` errors; directives that
//! suppress nothing are `unused-allow` warnings. Not compiled — lexed and
//! linted by `tests/golden.rs`.

fn same_line_allow() {
    let t0 = std::time::Instant::now(); // simlint: allow(nondet-source)
    let _ = t0;
}

fn next_line_allow() {
    // Harness-side timing echo only. simlint: allow(nondet-source)
    let t0 = std::time::Instant::now();
    let _ = t0;
}

fn allow_two_lines_up_reaches_nothing() {
    // simlint: allow(nondet-source)
    let _gap = 0;
    let t0 = std::time::Instant::now();
    let _ = t0;
}

fn unknown_rule_name() {
    let _x = 0; // simlint: allow(nondeterminism-source)
}

fn stale_known_rule() {
    let _n = 42; // simlint: allow(unordered-iter)
}
