//! Fixture: `cow-discipline` hazards — mutations of a shared copy-on-write
//! spine that sidestep `Arc::make_mut`. The struct name `SegLog` is in
//! simlint's registered COW type list, and `sealed` is its `Arc`-typed
//! spine field. Not compiled — lexed and linted by `tests/golden.rs`.

use std::sync::Arc;

struct SegLog {
    sealed: Arc<Vec<Arc<Vec<u64>>>>,
    tail: Vec<u64>,
}

impl SegLog {
    fn disciplined_push(&mut self, seg: Vec<u64>) {
        // The one legal in-place mutation: copy-on-write via `make_mut`.
        Arc::make_mut(&mut self.sealed).push(Arc::new(seg));
    }

    fn direct_push(&mut self, seg: Vec<u64>) {
        self.sealed.push(Arc::new(seg));
    }

    fn index_assign(&mut self, seg: Arc<Vec<u64>>) {
        self.sealed[0] = seg;
    }

    fn get_mut_sidesteps_the_copy(&mut self) {
        Arc::get_mut(&mut self.sealed).unwrap().pop();
    }

    fn raw_mut_borrow(&mut self) {
        let spine = &mut self.sealed;
        spine.clear();
    }

    fn whole_field_replace(&mut self) {
        // Replacing the whole spine is COW-safe: forks keep the old Arc.
        self.sealed = Arc::new(Vec::new());
        self.tail.clear();
    }

    fn tail_is_not_a_spine(&mut self, item: u64) {
        self.tail.push(item);
    }
}
