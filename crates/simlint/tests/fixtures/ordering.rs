//! Fixture: deterministic diagnostic ordering. Findings are reported
//! sorted by (path, line, rule) no matter which rule pass emitted them
//! first — on line 10 below, `float-order` sorts before `unordered-iter`
//! even though the iteration scan runs earlier. Not compiled — lexed and
//! linted by `tests/golden.rs`.

use std::collections::HashMap;

fn two_rules_one_line(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}

fn later_line_sorts_after() {
    let _t0 = std::time::Instant::now();
}
