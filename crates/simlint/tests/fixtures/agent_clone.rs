//! Fixture: `snapshot-complete` at the agent level — every `Agent`
//! implementor needs a complete `Clone` so `Agent::snapshot` can capture
//! it. Not compiled — lexed and linted by `tests/golden.rs`.

struct Unsnapshotable {
    pending: u64,
}

impl Agent for Unsnapshotable {
    fn start(&mut self, _ctx: &mut SimCtx<'_>) {}
}

#[derive(Debug, Clone)]
struct DerivedOk {
    pending: u64,
}

impl Agent for DerivedOk {
    fn start(&mut self, _ctx: &mut SimCtx<'_>) {}
}

struct ManualIncomplete {
    pending: u64,
    scratch: Vec<u64>,
}

impl Clone for ManualIncomplete {
    fn clone(&self) -> Self {
        ManualIncomplete {
            pending: self.pending,
        }
    }
}

impl Agent for ManualIncomplete {
    fn start(&mut self, _ctx: &mut SimCtx<'_>) {}
}
