//! Unit tests for the symbol-aware graph rules over synthetic
//! mini-workspaces: hotness propagation (including the cold-trait stop
//! list), hot-chain rendering, seed-drift diagnostics, severity split, and
//! naive-twin resolution — all with custom seeds/entries so the tests are
//! independent of the real workspace's registry.

use simlint::graph::FnGraph;
use simlint::hotpath::{self, Seed};
use simlint::registry::Severity;
use simlint::twin::{self, TwinEntry};
use simlint::{Diagnostic, Model};

fn model(files: &[(&str, &str)], tests: &[(&str, &str)]) -> Model {
    let own = |v: &[(&str, &str)]| -> Vec<(String, String)> {
        v.iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect()
    };
    Model::from_sources(&own(files), &own(tests))
}

fn run_hotpath(m: &Model, seeds: &[Seed]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    hotpath::check(&m.files, seeds, &mut out);
    out.sort();
    out
}

const ENGINE_SEED: Seed = Seed {
    type_name: "Engine",
    fn_name: "tick",
    anchor_file: "crates/demo/src/engine.rs",
};

#[test]
fn hotness_propagates_through_calls_and_renders_the_chain() {
    let m = model(
        &[(
            "crates/demo/src/engine.rs",
            r"
            struct Engine;
            impl Engine {
                pub fn tick(&mut self) { dispatch(self); }
            }
            fn dispatch(e: &mut Engine) { grow_buffer(); }
            fn grow_buffer() { let v: Vec<u8> = Vec::with_capacity(8); }
            fn cold_helper() { let v: Vec<u8> = Vec::with_capacity(8); }
            ",
        )],
        &[],
    );
    let diags = run_hotpath(&m, &[ENGINE_SEED]);
    assert_eq!(diags.len(), 1, "only the hot allocation fires: {diags:?}");
    let d = &diags[0];
    assert_eq!(d.rule, "hot-path-alloc");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.message.contains("Engine::tick → dispatch → grow_buffer"),
        "chain missing from: {}",
        d.message
    );
}

#[test]
fn hotness_stops_at_cold_trait_impls_and_fn_names() {
    let m = model(
        &[(
            "crates/demo/src/engine.rs",
            r#"
            struct Engine { buf: Vec<u8> }
            impl Engine {
                pub fn tick(&mut self) { let copy = self.buf.clone(); snapshot(self); }
            }
            fn snapshot(e: &Engine) { let _s = e.serialize(); }
            impl Clone for Engine {
                fn clone(&self) -> Engine { Engine { buf: self.buf.to_vec() } }
            }
            impl Engine {
                fn serialize(&self) -> String { format!("{}", self.buf.len()) }
            }
            "#,
        )],
        &[],
    );
    let diags = run_hotpath(&m, &[ENGINE_SEED]);
    // `.clone()` in the hot body itself is a warning; the Clone impl's
    // `.to_vec()` and serialize's `format!` are cold and never fire.
    assert_eq!(diags.len(), 1, "cold bodies must not fire: {diags:?}");
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("`.clone()`"));
}

#[test]
fn unresolved_seed_is_a_config_drift_finding() {
    let m = model(&[("crates/demo/src/engine.rs", "fn unrelated() {}")], &[]);
    let diags = run_hotpath(&m, &[ENGINE_SEED]);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].file, "crates/demo/src/engine.rs");
    assert!(
        diags[0].message.contains("`Engine::tick` not found"),
        "got: {}",
        diags[0].message
    );
}

fn run_twin(m: &Model, entries: &[TwinEntry], logs: &[&str]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    twin::check(&m.files, &m.test_idents, entries, logs, &mut out);
    out.sort();
    out
}

const QUERY_ENTRY: TwinEntry = TwinEntry {
    type_name: "Series",
    fn_name: "compute",
    anchor_file: "crates/demo/src/series.rs",
};

const SERIES_OK: &str = r"
    struct Series;
    impl Series {
        pub fn compute(&self) -> f64 { 1.0 }
        pub fn compute_naive(&self) -> f64 { 1.0 }
    }
";

#[test]
fn twin_present_and_tested_is_clean() {
    let m = model(
        &[("crates/demo/src/series.rs", SERIES_OK)],
        &[(
            "crates/demo/tests/diff.rs",
            "fn t() { assert_eq!(Series.compute(), Series.compute_naive()); }",
        )],
    );
    assert_eq!(run_twin(&m, &[QUERY_ENTRY], &[]), Vec::new());
}

#[test]
fn missing_twin_is_an_error() {
    let m = model(
        &[(
            "crates/demo/src/series.rs",
            "struct Series; impl Series { pub fn compute(&self) -> f64 { 1.0 } }",
        )],
        &[],
    );
    let diags = run_twin(&m, &[QUERY_ENTRY], &[]);
    assert_eq!(diags.len(), 1);
    assert!(
        diags[0].message.contains("no `Series::compute_naive`"),
        "got: {}",
        diags[0].message
    );
}

#[test]
fn untested_twin_is_an_error() {
    let m = model(&[("crates/demo/src/series.rs", SERIES_OK)], &[]);
    let diags = run_twin(&m, &[QUERY_ENTRY], &[]);
    assert_eq!(diags.len(), 1);
    assert!(
        diags[0].message.contains("test"),
        "the finding must demand a test reference, got: {}",
        diags[0].message
    );
}

#[test]
fn windowed_queries_on_indexed_logs_are_discovered() {
    // No explicit entry: `WindowLog` is in the indexed-log list, so its
    // public `*_in` query needs a `*_naive` twin by discovery alone.
    let m = model(
        &[(
            "crates/demo/src/windowlog.rs",
            r"
            struct WindowLog;
            impl WindowLog {
                pub fn count_in(&self, from: u64, to: u64) -> usize { 0 }
            }
            ",
        )],
        &[],
    );
    let diags = run_twin(&m, &[], &["WindowLog"]);
    assert_eq!(diags.len(), 1);
    assert!(
        diags[0].message.contains("`WindowLog::count_naive`"),
        "got: {}",
        diags[0].message
    );
}

#[test]
fn fn_graph_resolves_qualified_and_method_calls() {
    let m = model(
        &[(
            "crates/demo/src/lib.rs",
            r"
            struct A;
            impl A {
                pub fn go(&self) { A::helper(); free(); self.finish(); }
                fn helper() {}
                fn finish(&self) {}
            }
            fn free() {}
            ",
        )],
        &[],
    );
    let g = FnGraph::build(&m.files);
    let (hot, missing) = g.hot_set(&[("A", "go")]);
    assert!(missing.is_empty());
    let names: Vec<String> = hot.keys().map(|&id| g.qualified_name(id)).collect();
    assert_eq!(names, ["A::go", "A::helper", "A::finish", "free"]);
}
