//! `simlint` — the workspace determinism, snapshot-coverage, and invariant
//! auditor.
//!
//! The whole reproduction rests on one invariant: simulations are
//! deterministic. `lab --jobs N` reports are byte-identical at any job
//! count, and warm-state forks are byte-identical to cold runs. That
//! invariant is easy to break silently — one `HashMap` iteration feeding a
//! report, one `Instant::now()` in an agent, one field missing from the
//! snapshot clone path, one COW spine mutated around `Arc::make_mut` — and
//! dynamic tests only catch the breakage when a test happens to exercise
//! the affected path. `simlint` enforces the invariants statically, at the
//! source level, on every PR:
//!
//! ```text
//! cargo run -p simlint -- --check [--format text|json|sarif] [--baseline <file>]
//! cargo run -p simlint -- --list-rules
//! ```
//!
//! Rules (see [`registry::RULES`]; each suppressible per line with
//! `// simlint: allow(<rule>)` on the flagged line or the line above):
//!
//! * `nondet-source`, `unordered-iter`, `float-order` — per-file
//!   determinism scans (see [`rules`]);
//! * `snapshot-complete` — every tracked snapshot struct's `Clone` path
//!   must reference every field (see [`snapshot`]);
//! * `cow-discipline` — registered copy-on-write spines are mutated only
//!   through `Arc::make_mut` (see [`cow`]);
//! * `hot-path-alloc` — no allocation constructors reachable from the
//!   kernel's hot entry points (see [`hotpath`]);
//! * `naive-twin` — every indexed query keeps a test-exercised `*_naive`
//!   ground-truth twin (see [`twin`]);
//! * `bad-allow` / `unused-allow` — the allow escape hatch itself is
//!   audited (see [`allow`]).
//!
//! The implementation is a hand-rolled lexer, a lightweight item parser
//! ([`parse`]) resolving `fn`/`impl` items and call sites into a function
//! graph ([`graph`]), and token-pattern rule passes — no external parser
//! dependencies, consistent with the workspace's offline `vendor/` policy.
//! It is heuristic by design: type-blind, tuned so that everything it flags
//! in this workspace is a real hazard or carries an explicit, reviewable
//! `allow`.
//!
//! ## Exit codes (stable)
//!
//! | code | meaning                                                  |
//! |------|----------------------------------------------------------|
//! | 0    | clean: no `error`-severity findings (warnings permitted) |
//! | 1    | at least one unsuppressed `error`-severity finding       |
//! | 2    | internal error: bad usage, unreadable file, no workspace |

pub mod allow;
pub mod cow;
pub mod graph;
pub mod hotpath;
pub mod lexer;
pub mod output;
pub mod parse;
pub mod registry;
pub mod rules;
pub mod snapshot;
pub mod twin;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use registry::Severity;

/// One finding.
///
/// The derived ordering sorts by (file, line, rule, message) — the stable
/// emission order every output format uses.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule id (see [`registry::RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The finding's severity (defaults to the rule's registry severity).
    pub severity: Severity,
}

impl Diagnostic {
    pub(crate) fn new(rule: &'static str, file: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            file: file.replace('\\', "/"),
            line,
            rule,
            message,
            severity: registry::default_severity(rule),
        }
    }

    /// Overrides the severity (used for per-site downgrades like
    /// `.clone()` on the hot path).
    pub(crate) fn with_severity(mut self, severity: Severity) -> Diagnostic {
        self.severity = severity;
        self
    }

    /// The finding as a JSON object (hand-rolled; see [`output`]).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule,
            self.severity.as_str(),
            output::json_escape(&self.file),
            self.line,
            output::json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}] {}",
            self.file, self.line, self.severity, self.rule, self.message
        )
    }
}

/// Crates whose `src/` trees are simulation code and get the full rule set.
///
/// `bench` is exempt (it measures wall time by design) and so is `simlint`
/// itself. `examples/`, `tests/`, and `benches/` directories are harness
/// code: they drive simulations but their own statements never execute
/// inside one.
pub const SIM_CRATES: [&str; 11] = [
    "apps",
    "baselines",
    "callgraph",
    "core",
    "defense",
    "lab",
    "microsim",
    "queueing",
    "simnet",
    "telemetry",
    "workload",
];

/// One scanned source file: lexed (with `#[cfg(test)]` regions stripped
/// from the token stream, allow directives retained) and item-parsed.
#[derive(Debug)]
pub struct SrcFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// The lexed file; `tokens` holds only non-test code.
    pub lexed: lexer::Lexed,
    /// Parsed `fn` items (with impl context and call sites).
    pub fns: Vec<parse::FnItem>,
}

/// The whole workspace as the rules see it: scanned source files plus the
/// set of identifiers appearing in test code (used by `naive-twin` to
/// verify twins are exercised).
#[derive(Debug)]
pub struct Model {
    /// Scanned simulation source files, in deterministic path order.
    pub files: Vec<SrcFile>,
    /// Identifiers referenced anywhere in test code: `tests/` trees and
    /// `#[cfg(test)]` modules.
    pub test_idents: BTreeSet<String>,
}

impl Model {
    /// Builds a model from in-memory sources — the workhorse behind
    /// [`Model::load`], fixture corpora, and mutation tests that patch one
    /// real file's text and re-lint.
    pub fn from_sources(sources: &[(String, String)], test_sources: &[(String, String)]) -> Model {
        let mut files = Vec::with_capacity(sources.len());
        let mut test_idents = BTreeSet::new();
        for (path, src) in sources {
            let mut lexed = lexer::lex(src);
            let (kept, test) = rules::split_cfg_test(std::mem::take(&mut lexed.tokens));
            lexed.tokens = kept;
            for t in &test {
                if let Some(id) = t.ident() {
                    test_idents.insert(id.to_string());
                }
            }
            let fns = parse::parse_items(&lexed.tokens);
            files.push(SrcFile {
                path: path.replace('\\', "/"),
                lexed,
                fns,
            });
        }
        for (_path, src) in test_sources {
            for t in &lexer::lex(src).tokens {
                if let Some(id) = t.ident() {
                    test_idents.insert(id.to_string());
                }
            }
        }
        Model { files, test_idents }
    }

    /// Loads the model for the workspace rooted at `root`: every sim
    /// crate's `src/` tree is scanned; `tests/` trees (workspace-level and
    /// per-crate) feed the test-identifier set.
    pub fn load(root: &Path) -> io::Result<Model> {
        let (sources, test_sources) = Model::load_sources(root)?;
        Ok(Model::from_sources(&sources, &test_sources))
    }

    /// Reads the raw `(path, text)` pairs [`Model::load`] scans, without
    /// building the model — mutation tests patch one file's text and feed
    /// the result back through [`Model::from_sources`].
    #[allow(clippy::type_complexity)]
    pub fn load_sources(root: &Path) -> io::Result<(Vec<(String, String)>, Vec<(String, String)>)> {
        let mut sources = Vec::new();
        for krate in SIM_CRATES {
            let src_dir = root.join("crates").join(krate).join("src");
            for file in rust_files(&src_dir)? {
                let rel = rel_path(root, &file);
                sources.push((rel, fs::read_to_string(&file)?));
            }
        }
        let mut test_sources = Vec::new();
        for file in rust_files(&root.join("tests"))? {
            test_sources.push((rel_path(root, &file), fs::read_to_string(&file)?));
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut krates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .map(|e| e.map(|e| e.path()))
                .collect::<io::Result<_>>()?;
            krates.sort();
            for krate in krates {
                for file in rust_files(&krate.join("tests"))? {
                    test_sources.push((rel_path(root, &file), fs::read_to_string(&file)?));
                }
            }
        }
        Ok((sources, test_sources))
    }

    /// The scanned file with the given workspace-relative path.
    pub fn file(&self, path: &str) -> Option<&SrcFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

/// Lints one source file (per-file rules only — the graph rules need a
/// whole [`Model`]). `path` is the label used in diagnostics.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let model = Model::from_sources(&[(path.to_string(), src.to_string())], &[]);
    let spines = cow::spine_map(&model.files);
    let mut out = Vec::new();
    for file in &model.files {
        rules::lint_tokens(&file.path, &file.lexed, &mut out);
        snapshot::check_agents(&file.path, &file.lexed, &mut out);
        cow::check_file(file, &spines, &mut out);
    }
    allow::apply(&model.files, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Runs the full rule set over a model: per-file rules, the COW/hot-path/
/// naive-twin graph rules, the snapshot-completeness cross-checks, and
/// allow-directive accounting. Diagnostics come back sorted by
/// (path, line, rule).
pub fn lint_model(model: &Model) -> Vec<Diagnostic> {
    let spines = cow::spine_map(&model.files);
    let mut out = Vec::new();
    for file in &model.files {
        rules::lint_tokens(&file.path, &file.lexed, &mut out);
        snapshot::check_agents(&file.path, &file.lexed, &mut out);
        cow::check_file(file, &spines, &mut out);
    }
    cow::check_registry(&model.files, &mut out);
    hotpath::check(&model.files, &hotpath::HOT_SEEDS, &mut out);
    twin::check(
        &model.files,
        &model.test_idents,
        &twin::TWIN_ENTRIES,
        &twin::INDEXED_LOGS,
        &mut out,
    );
    for target in &snapshot::TARGETS {
        match (model.file(target.struct_file), model.file(target.clone_file)) {
            (Some(s), Some(c)) => {
                snapshot::check_target(target, &s.lexed.tokens, &c.lexed.tokens, &mut out);
            }
            (None, _) => out.push(Diagnostic::new(
                rules::SNAPSHOT_COMPLETE,
                target.struct_file,
                1,
                format!(
                    "tracked snapshot struct `{}`'s file is not in the scanned workspace; update simlint's TARGETS if it moved",
                    target.struct_name
                ),
            )),
            (Some(_), None) => out.push(Diagnostic::new(
                rules::SNAPSHOT_COMPLETE,
                target.clone_file,
                1,
                format!(
                    "tracked snapshot struct `{}`'s clone file is not in the scanned workspace; update simlint's TARGETS if it moved",
                    target.struct_name
                ),
            )),
        }
    }
    allow::apply(&model.files, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Lints the whole workspace rooted at `root` (see [`lint_model`]).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(lint_model(&Model::load(root)?))
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// All `.rs` files under `dir`, recursively, in sorted (deterministic)
/// order. A missing directory yields no files.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    if !dir.is_dir() {
        return Ok(files);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Finds the workspace root: walks up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
