//! `simlint` — the workspace determinism & snapshot-coverage auditor.
//!
//! The whole reproduction rests on one invariant: simulations are
//! deterministic. `lab --jobs N` reports are byte-identical at any job
//! count, and warm-state forks are byte-identical to cold runs. That
//! invariant is easy to break silently — one `HashMap` iteration feeding a
//! report, one `Instant::now()` in an agent, one field missing from the
//! snapshot clone path — and dynamic tests only catch the breakage when a
//! test happens to exercise the affected path. `simlint` enforces the
//! invariant statically, at the source level, on every PR:
//!
//! ```text
//! cargo run -p simlint -- --check [--json]
//! ```
//!
//! Rules (each suppressible per line with `// simlint: allow(<rule>)`):
//!
//! * `nondet-source` — `std::time::{Instant, SystemTime}`, `thread_rng` /
//!   `from_entropy`, `std::env` reads, and raw `thread::spawn` in
//!   simulation crates;
//! * `unordered-iter` — iterating a `HashMap`/`HashSet` (hash order is
//!   unspecified and changes across runs);
//! * `float-order` — `.sum::<f64>()`/`.product::<f64>()` over an iterator
//!   derived from an unordered collection (float addition is
//!   order-sensitive);
//! * `snapshot-complete` — every field of `microsim::Kernel` and
//!   `simnet::EventQueue` must be referenced in its explicit `Clone` impl,
//!   and every `Agent` implementor must be cloneable, so warm-state forks
//!   can never silently go stale.
//!
//! The implementation is a hand-rolled lexer plus token-pattern scans — no
//! external parser dependencies, consistent with the workspace's offline
//! `vendor/` policy. It is heuristic by design: file-scoped, type-blind,
//! tuned so that everything it flags in this workspace is a real hazard or
//! carries an explicit, reviewable `allow`.

pub mod lexer;
pub mod rules;
pub mod snapshot;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Stable rule id (`nondet-source`, `unordered-iter`, `float-order`,
    /// `snapshot-complete`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: &'static str, file: &str, line: u32, message: String) -> Diagnostic {
        Diagnostic {
            file: file.replace('\\', "/"),
            line,
            rule,
            message,
        }
    }

    /// The finding as a JSON object (hand-rolled; the only JSON this crate
    /// emits).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule,
            json_escape(&self.file),
            self.line,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Crates whose `src/` trees are simulation code and get the full rule set.
///
/// `bench` is exempt (it measures wall time by design) and so is `simlint`
/// itself. `examples/`, `tests/`, and `benches/` directories are harness
/// code: they drive simulations but their own statements never execute
/// inside one.
pub const SIM_CRATES: [&str; 11] = [
    "apps",
    "baselines",
    "callgraph",
    "core",
    "defense",
    "lab",
    "microsim",
    "queueing",
    "simnet",
    "telemetry",
    "workload",
];

/// Lints one source file (per-file rules only). `path` is the label used in
/// diagnostics.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let mut lexed = lexer::lex(src);
    lexed.tokens = rules::strip_cfg_test(std::mem::take(&mut lexed.tokens));
    let mut out = Vec::new();
    rules::lint_tokens(path, &lexed, &mut out);
    snapshot::check_agents(path, &lexed, &mut out);
    out.sort();
    out
}

/// Lints the whole workspace rooted at `root`: per-file rules over every
/// sim crate's `src/` tree, plus the workspace-level snapshot-completeness
/// cross-checks.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for krate in SIM_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        for file in rust_files(&src_dir)? {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let src = fs::read_to_string(&file)?;
            out.extend(lint_source(&rel, &src));
        }
    }
    for target in &snapshot::TARGETS {
        let struct_src = fs::read_to_string(root.join(target.struct_file))?;
        let clone_src = fs::read_to_string(root.join(target.clone_file))?;
        let struct_toks = rules::strip_cfg_test(lexer::lex(&struct_src).tokens);
        let clone_toks = rules::strip_cfg_test(lexer::lex(&clone_src).tokens);
        snapshot::check_target(target, &struct_toks, &clone_toks, &mut out);
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, in sorted (deterministic)
/// order. A missing directory yields no files.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    if !dir.is_dir() {
        return Ok(files);
    }
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&d)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Finds the workspace root: walks up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
