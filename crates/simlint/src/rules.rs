//! Per-file determinism rules, implemented as token-pattern scans.
//!
//! | rule id            | hazard                                             |
//! |--------------------|----------------------------------------------------|
//! | `nondet-source`    | wall clock, OS entropy, env vars, raw threads      |
//! | `unordered-iter`   | iterating a `HashMap`/`HashSet`                    |
//! | `float-order`      | float reduction over an unordered iteration        |
//!
//! Every diagnostic can be suppressed with a `// simlint: allow(<rule>)`
//! comment on the same line or the line above — the escape hatch for code
//! that is demonstrably harness-side (CLI arg parsing, debug output) rather
//! than simulation state.

use std::collections::BTreeSet;

use crate::lexer::{Lexed, Token, TokenKind};
use crate::Diagnostic;

/// Rule id: nondeterminism sources (wall clock, entropy, env, raw threads).
pub const NONDET_SOURCE: &str = "nondet-source";
/// Rule id: unordered `HashMap`/`HashSet` iteration.
pub const UNORDERED_ITER: &str = "unordered-iter";
/// Rule id: float reduction over an unordered iteration.
pub const FLOAT_ORDER: &str = "float-order";
/// Rule id: snapshot/Clone path missing a struct field (see
/// [`crate::snapshot`]).
pub const SNAPSHOT_COMPLETE: &str = "snapshot-complete";

/// Methods whose iteration order is the hash order of the collection.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Runs the per-file rules over a lexed file whose `#[cfg(test)]` modules
/// have already been masked out.
pub fn lint_tokens(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    let map_vars = collect_map_vars(toks);
    nondet_sources(path, lexed, out);
    unordered_iteration(path, lexed, &map_vars, out);
    float_order(path, lexed, &map_vars, out);
}

/// Names bound (via `let`, struct field, or fn param annotation) to a
/// `HashMap`/`HashSet` type anywhere in the file.
///
/// This is deliberately file-scoped and flow-insensitive: a false positive
/// (another local reusing the name with a `Vec` type) is rare in practice
/// and has the `allow` escape hatch; a false negative would silently admit
/// a reproducibility hazard.
pub fn collect_map_vars(toks: &[Token]) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    for i in 0..toks.len() {
        // `name : ... HashMap/HashSet ...` — a type annotation (let binding,
        // struct field, or fn parameter).
        if let Some(name) = toks[i].ident().filter(|n| !is_keyword(n)) {
            let annotated = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && !(i > 0 && toks[i - 1].is_punct(':'));
            if annotated && annotation_mentions_map(&toks[i + 2..]) {
                vars.insert(name.to_string());
            }
        }
        // `let [mut] name = [path ::] HashMap :: new(...)` (also
        // `with_capacity`, `default`, `from`).
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(Token::ident) else {
                continue;
            };
            if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                continue;
            }
            // Scan the initializer up to the terminating `;` for a
            // constructor call on HashMap/HashSet.
            let mut k = j + 2;
            while k < toks.len() && !toks[k].is_punct(';') {
                if is_map_type(&toks[k])
                    && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(k + 3).is_some_and(|t| {
                        ["new", "with_capacity", "default", "from"]
                            .iter()
                            .any(|m| t.is_ident(m))
                    })
                {
                    vars.insert(name.to_string());
                    break;
                }
                // Stop at a nested statement boundary.
                if toks[k].is_punct('{') {
                    break;
                }
                k += 1;
            }
        }
    }
    vars
}

/// `true` when the type tokens starting right after a `:` mention
/// `HashMap`/`HashSet` before the annotation ends.
fn annotation_mentions_map(toks: &[Token]) -> bool {
    let mut angle = 0i32;
    let mut paren = 0i32;
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => {
                // `->` introduces a return type, not a closing angle.
                if i > 0 && toks[i - 1].is_punct('-') {
                    continue;
                }
                angle -= 1;
                if angle < 0 {
                    return false;
                }
            }
            TokenKind::Punct('(' | '[') => paren += 1,
            TokenKind::Punct(')' | ']') => {
                paren -= 1;
                if paren < 0 {
                    return false;
                }
            }
            TokenKind::Punct(',' | ';' | '=' | '{' | '}') if angle == 0 && paren == 0 => {
                return false;
            }
            TokenKind::Ident(_) if is_map_type(t) => return true,
            _ => {}
        }
        if i > 48 {
            // Annotations this long do not occur; bail before scanning the
            // rest of the file.
            return false;
        }
    }
    false
}

fn is_map_type(t: &Token) -> bool {
    t.is_ident("HashMap") || t.is_ident("HashSet")
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "pub"
            | "fn"
            | "if"
            | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "return"
            | "in"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "mod"
            | "use"
            | "where"
            | "ref"
            | "move"
            | "const"
            | "static"
            | "type"
            | "crate"
            | "self"
            | "Self"
            | "super"
    )
}

/// Rule `nondet-source`: wall clock, OS entropy, environment reads, raw
/// thread spawns.
fn nondet_sources(path: &str, lexed: &Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    let mut push = |line: u32, what: &str| {
        out.push(Diagnostic::new(
            NONDET_SOURCE,
            path,
            line,
            format!("{what} is nondeterministic across runs; simulation code must derive all state from the seed and simulated time"),
        ));
    };
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokenKind::Ident(id) if id == "Instant" || id == "SystemTime" => {
                push(t.line, &format!("the wall clock (`std::time::{id}`)"));
            }
            TokenKind::Ident(id) if id == "thread_rng" || id == "from_entropy" => {
                push(t.line, &format!("OS entropy (`{id}`)"));
            }
            TokenKind::Ident(id)
                if id == "std"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("env")) =>
            {
                push(t.line, "the process environment (`std::env`)");
            }
            TokenKind::Ident(id)
                if id == "thread"
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("spawn")) =>
            {
                push(
                    t.line,
                    "a raw thread spawn (`thread::spawn`; use `lab::sweep::map_cells`, which preserves cell order)",
                );
            }
            _ => {}
        }
    }
    dedupe(out);
}

/// Rule `unordered-iter`: iterating a `HashMap`/`HashSet`, whose order
/// varies across runs (and across `RandomState` seeds).
fn unordered_iteration(
    path: &str,
    lexed: &Lexed,
    map_vars: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    let mut push = |line: u32, name: &str, how: &str| {
        out.push(Diagnostic::new(
            UNORDERED_ITER,
            path,
            line,
            format!("{how} `{name}`, which is a HashMap/HashSet: iteration order is unspecified; use a BTreeMap/BTreeSet or sort before iterating"),
        ));
    };
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if !map_vars.contains(name) {
            continue;
        }
        // `name.iter()` / `name.values()` / ...
        if toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            if let Some(m) = toks.get(i + 2).and_then(Token::ident) {
                if ITER_METHODS.contains(&m) {
                    push(toks[i + 2].line, name, &format!("calling `.{m}()` on"));
                }
            }
        }
        // `for x in [&[mut]] [self.]name { ... }` — the loop iterates the
        // collection directly.
        if i >= 1 {
            let mut j = i;
            // Step over `self .` / `& mut` prefixes back to the `in`.
            while j > 0
                && (toks[j - 1].is_punct('.')
                    || toks[j - 1].is_punct('&')
                    || toks[j - 1].is_ident("mut")
                    || toks[j - 1].is_ident("self"))
            {
                j -= 1;
            }
            let direct_loop = j > 0
                && toks[j - 1].is_ident("in")
                && toks.get(i + 1).is_some_and(|t| t.is_punct('{'));
            if direct_loop {
                push(toks[i].line, name, "iterating");
            }
        }
    }
    dedupe(out);
}

/// Rule `float-order`: a float reduction (`.sum::<f64>()`, `.product::<..>`)
/// in a statement that draws from an unordered collection — float addition
/// is not associative, so hash order changes the low bits of the result.
fn float_order(path: &str, lexed: &Lexed, map_vars: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        let is_reduce = toks[i].is_punct('.')
            && toks
                .get(i + 1)
                .is_some_and(|t| t.is_ident("sum") || t.is_ident("product"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('<'))
            && toks
                .get(i + 5)
                .is_some_and(|t| t.is_ident("f64") || t.is_ident("f32"));
        if !is_reduce {
            continue;
        }
        let line = toks[i + 1].line;
        // Look back to the start of the statement for an unordered source
        // feeding this chain.
        let start = toks[..i]
            .iter()
            .rposition(|t| t.is_punct(';') || t.is_punct('{'))
            .map_or(0, |p| p + 1);
        let feeds_from_map = (start..i).any(|k| {
            toks[k].ident().is_some_and(|name| map_vars.contains(name))
                && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
                && toks
                    .get(k + 2)
                    .and_then(Token::ident)
                    .is_some_and(|m| ITER_METHODS.contains(&m))
        });
        if feeds_from_map {
            out.push(Diagnostic::new(
                FLOAT_ORDER,
                path,
                line,
                "float reduction over a HashMap/HashSet iteration: float addition is order-sensitive, so the result depends on hash order; reduce over a sorted sequence instead".to_string(),
            ));
        }
    }
    dedupe(out);
}

/// Drops duplicate (rule, file, line) diagnostics, keeping the first.
fn dedupe(out: &mut Vec<Diagnostic>) {
    let mut seen = BTreeSet::new();
    out.retain(|d| seen.insert((d.rule, d.file.clone(), d.line)));
}

/// Masks out `#[cfg(test)] mod ... { ... }` blocks from a token stream.
///
/// Test modules assert over simulation output and routinely use hash
/// collections for membership checks — harmless, because nothing simulated
/// depends on their iteration order.
pub fn strip_cfg_test(toks: Vec<Token>) -> Vec<Token> {
    split_cfg_test(toks).0
}

/// Splits a token stream into (non-test tokens, `#[cfg(test)]` tokens).
///
/// The test half feeds the `naive-twin` rule's reference scan: an indexed
/// query's ground-truth twin counts as exercised when its name appears in
/// any test code, including in-file `#[cfg(test)]` modules.
pub fn split_cfg_test(toks: Vec<Token>) -> (Vec<Token>, Vec<Token>) {
    let mut out = Vec::with_capacity(toks.len());
    let mut test = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if is_cfg_test_attr(&toks, i) {
            // Skip this attribute, any further attributes, the `mod name`,
            // and the brace-balanced body.
            let mut j = i;
            loop {
                j = skip_attr(&toks, j);
                if !toks.get(j).is_some_and(|t| t.is_punct('#')) {
                    break;
                }
            }
            if toks.get(j).is_some_and(|t| t.is_ident("mod")) {
                // Find the opening brace, then its match.
                while j < toks.len() && !toks[j].is_punct('{') {
                    j += 1;
                }
                let mut depth = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
                test.extend_from_slice(&toks[i..j]);
                i = j;
                continue;
            }
            // `#[cfg(test)]` on something other than a module (a lone fn,
            // an import): skip just the attribute and the next item-ish
            // token run up to `;` or a brace-balanced block.
            let mut k = skip_attr(&toks, i);
            let mut depth = 0i32;
            while k < toks.len() {
                if toks[k].is_punct('{') {
                    depth += 1;
                } else if toks[k].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                } else if toks[k].is_punct(';') && depth == 0 {
                    k += 1;
                    break;
                }
                k += 1;
            }
            test.extend_from_slice(&toks[i..k]);
            i = k;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    (out, test)
}

/// `true` when `toks[i..]` starts with exactly `#[cfg(test)]`.
fn is_cfg_test_attr(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
        && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && toks.get(i + 6).is_some_and(|t| t.is_punct(']'))
}

/// Returns the index one past an attribute starting at `i` (`#` `[` ... `]`
/// with bracket balancing); returns `i` unchanged if not at an attribute.
pub fn skip_attr(toks: &[Token], i: usize) -> usize {
    if !toks.get(i).is_some_and(|t| t.is_punct('#')) {
        return i;
    }
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct('!')) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('[')) {
        return i;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}
