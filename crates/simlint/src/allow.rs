//! Central handling of `// simlint: allow(<rule>)` directives.
//!
//! Scoping is explicit and line-accurate: a directive suppresses matching
//! findings on its own line and on the immediately following line — nothing
//! else. Two meta-rules keep the escape hatch honest:
//!
//! * `bad-allow` (error): a directive naming a rule id that is not in the
//!   registry — a typo would otherwise silently suppress nothing while
//!   looking reviewed;
//! * `unused-allow` (warning): a directive whose rule never fired on its
//!   line or the next — stale suppressions accumulate risk and must be
//!   deleted (or they mark a spot where the rule regressed).
//!
//! Neither meta-rule can itself be suppressed with an allow.

use std::collections::{BTreeMap, BTreeSet};

use crate::{registry, Diagnostic, SrcFile};

/// Rule id: unknown rule name inside an allow directive.
pub const BAD_ALLOW: &str = "bad-allow";
/// Rule id: an allow directive that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Applies allow directives to `diags`: drops suppressed findings, then
/// appends `bad-allow` / `unused-allow` meta-findings.
pub fn apply(files: &[SrcFile], diags: &mut Vec<Diagnostic>) {
    let by_path: BTreeMap<&str, &SrcFile> = files.iter().map(|f| (f.path.as_str(), f)).collect();
    let mut used: BTreeSet<(&str, u32, String)> = BTreeSet::new();
    let mut kept = Vec::with_capacity(diags.len());
    for d in diags.drain(..) {
        let Some(file) = by_path.get(d.file.as_str()) else {
            kept.push(d);
            continue;
        };
        let mut suppressed = false;
        for l in [d.line, d.line.saturating_sub(1)] {
            if l == 0 {
                continue;
            }
            if let Some(rules) = file.lexed.allows.get(&l) {
                if rules.iter().any(|r| r == d.rule) {
                    used.insert((file.path.as_str(), l, d.rule.to_string()));
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    *diags = kept;

    for f in files {
        for (&line, rules) in &f.lexed.allows {
            let unique: BTreeSet<&String> = rules.iter().collect();
            for rule in unique {
                if registry::rule(rule).is_none() {
                    diags.push(Diagnostic::new(
                        BAD_ALLOW,
                        &f.path,
                        line,
                        format!(
                            "allow directive names unknown rule `{rule}`; run `simlint --list-rules` for the valid ids"
                        ),
                    ));
                } else if !used.contains(&(f.path.as_str(), line, rule.clone())) {
                    diags.push(Diagnostic::new(
                        UNUSED_ALLOW,
                        &f.path,
                        line,
                        format!(
                            "`allow({rule})` suppresses no `{rule}` finding on this line or the next; delete the stale directive"
                        ),
                    ));
                }
            }
        }
    }
}
