//! Machine-readable output (JSON, SARIF 2.1.0) and the baseline
//! suppression-file format.
//!
//! Everything here is hand-rolled string building, consistent with the
//! crate's zero-dependency policy. Output is deterministic: diagnostics are
//! already sorted by (path, line, rule) when they reach these renderers.
//!
//! ## Baseline format
//!
//! A baseline file suppresses known findings so a new rule can land
//! warn-first. Each non-comment line is matched against a finding's
//! rendered prefix — `file:line:` plus the `[rule]` id — so a baseline can
//! be created by redirecting simlint's text output to a file:
//!
//! ```text
//! cargo run -p simlint -- --check > simlint.baseline
//! cargo run -p simlint -- --check --baseline simlint.baseline
//! ```
//!
//! Lines starting with `#` and blank lines are ignored. The message part is
//! ignored during matching, so rewording a diagnostic does not invalidate a
//! baseline; moving the finding (file or line) does, which is what makes
//! the baseline shrink-only in practice.

use crate::registry::{self, Severity};
use crate::Diagnostic;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// All findings as one JSON array (the `--format json` payload).
pub fn json_array(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// All findings as a minimal SARIF 2.1.0 log (the `--format sarif`
/// payload), with the rule registry as tool metadata.
pub fn sarif(diags: &[Diagnostic]) -> String {
    let rules: Vec<String> = registry::RULES
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\"defaultConfiguration\":{{\"level\":\"{}\"}}}}",
                r.id,
                json_escape(r.summary),
                r.severity.as_str()
            )
        })
        .collect();
    let results: Vec<String> = diags
        .iter()
        .map(|d| {
            format!(
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\"region\":{{\"startLine\":{}}}}}}}]}}",
                d.rule,
                d.severity.as_str(),
                json_escape(&d.message),
                json_escape(&d.file),
                d.line
            )
        })
        .collect();
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"simlint\",\"informationUri\":\"https://example.invalid/simlint\",\"rules\":[{}]}}}},\"results\":[{}]}}]}}",
        rules.join(","),
        results.join(",")
    )
}

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id.
    pub rule: String,
}

/// Parses a baseline file; lines that do not look like findings are
/// ignored (so comments, summaries, and blank lines are harmless).
pub fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    let mut entries = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((file, rest)) = line.split_once(':') else {
            continue;
        };
        let Some((lineno, rest)) = rest.split_once(':') else {
            continue;
        };
        let Ok(lineno) = lineno.parse::<u32>() else {
            continue;
        };
        let Some(open) = rest.find('[') else {
            continue;
        };
        let Some(close) = rest[open..].find(']') else {
            continue;
        };
        entries.push(BaselineEntry {
            file: file.trim().to_string(),
            line: lineno,
            rule: rest[open + 1..open + close].to_string(),
        });
    }
    entries
}

/// Drops findings matched by the baseline; returns the survivors and the
/// number suppressed.
pub fn apply_baseline(
    diags: Vec<Diagnostic>,
    baseline: &[BaselineEntry],
) -> (Vec<Diagnostic>, usize) {
    let before = diags.len();
    let kept: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|d| {
            !baseline
                .iter()
                .any(|b| b.file == d.file && b.line == d.line && b.rule == d.rule)
        })
        .collect();
    let suppressed = before - kept.len();
    (kept, suppressed)
}

/// `true` when any finding gates the build (i.e. has `error` severity).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: u32, rule: &'static str) -> Diagnostic {
        Diagnostic::new(rule, file, line, "msg".to_string())
    }

    #[test]
    fn baseline_round_trips_through_text_output() {
        let diags = vec![
            diag("crates/a.rs", 3, "nondet-source"),
            diag("crates/b.rs", 7, "unordered-iter"),
        ];
        let text: String = diags.iter().map(|d| format!("{d}\n")).collect();
        let entries = parse_baseline(&text);
        assert_eq!(entries.len(), 2);
        let (kept, suppressed) = apply_baseline(diags, &entries);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn baseline_ignores_comments_and_partial_matches() {
        let entries =
            parse_baseline("# comment\n\nnot a finding\ncrates/a.rs:3: error[nondet-source] msg\n");
        assert_eq!(
            entries,
            [BaselineEntry {
                file: "crates/a.rs".to_string(),
                line: 3,
                rule: "nondet-source".to_string(),
            }]
        );
        let survivors = vec![diag("crates/a.rs", 4, "nondet-source")];
        let (kept, suppressed) = apply_baseline(survivors, &entries);
        assert_eq!(kept.len(), 1, "a moved finding is not baselined");
        assert_eq!(suppressed, 0);
    }

    #[test]
    fn sarif_names_every_rule_and_result() {
        let s = sarif(&[diag("crates/a.rs", 3, "cow-discipline")]);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"cow-discipline\""));
        for r in &crate::registry::RULES {
            assert!(s.contains(&format!("\"id\":\"{}\"", r.id)));
        }
    }
}
