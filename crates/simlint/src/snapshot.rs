//! Rule `snapshot-complete`: the warm-state fork must copy *every* field.
//!
//! PR 2's snapshot/fork machinery deep-clones the live simulation state
//! (`microsim::Kernel`, `simnet::EventQueue`) through hand-written `Clone`
//! impls with one line per field, and captures agents by cloning them. A
//! field added to any of those structs without extending the clone path
//! would silently produce stale forks — runs that diverge from cold
//! re-simulation in ways no targeted test anticipates. This rule makes the
//! omission a CI failure:
//!
//! * for each tracked struct (`Kernel`, `EventQueue`), parse its field list
//!   and require every field name to be referenced inside the corresponding
//!   `impl Clone for ...` block (in `microsim/src/snapshot.rs` for the
//!   kernel, next to the struct for the queue);
//! * every `impl Agent for X` in simulation code must come with a `Clone`
//!   for `X` — either `#[derive(Clone)]` (complete by construction: the
//!   compiler forces every field) or a manual impl referencing every field —
//!   because `Agent::snapshot` captures agents by cloning and a non-`Clone`
//!   agent silently makes a whole simulation un-checkpointable.

use crate::lexer::Token;
use crate::rules::{skip_attr, SNAPSHOT_COMPLETE};
use crate::Diagnostic;

/// A struct whose `Clone` impl is the snapshot path and must stay
/// field-complete.
#[derive(Debug)]
pub struct SnapshotTarget<'a> {
    /// Struct name, e.g. `"Kernel"`.
    pub struct_name: &'a str,
    /// Workspace-relative path of the file holding the struct definition.
    pub struct_file: &'a str,
    /// Workspace-relative path of the file holding `impl Clone for <name>`.
    pub clone_file: &'a str,
}

/// The workspace's tracked snapshot structs.
pub const TARGETS: [SnapshotTarget<'static>; 9] = [
    SnapshotTarget {
        struct_name: "Kernel",
        struct_file: "crates/microsim/src/kernel.rs",
        clone_file: "crates/microsim/src/snapshot.rs",
    },
    SnapshotTarget {
        struct_name: "EventQueue",
        struct_file: "crates/simnet/src/event.rs",
        clone_file: "crates/simnet/src/event.rs",
    },
    // The metrics store is cloned per fork through the copy-on-write
    // segmented logs; a field added to `Metrics` but not to its manual
    // `Clone` would silently vanish from every fork.
    SnapshotTarget {
        struct_name: "Metrics",
        struct_file: "crates/microsim/src/metrics.rs",
        clone_file: "crates/microsim/src/snapshot.rs",
    },
    // The copy-on-write sample stores are the agents' snapshot payload: an
    // agent fork shares sealed segments and copies only the mutable tail.
    // A field added to either store but missed by its manual `Clone` would
    // silently reset on every fork.
    SnapshotTarget {
        struct_name: "SegSamples",
        struct_file: "crates/simnet/src/stats.rs",
        clone_file: "crates/simnet/src/stats.rs",
    },
    SnapshotTarget {
        struct_name: "SegStore",
        struct_file: "crates/simnet/src/stats.rs",
        clone_file: "crates/simnet/src/stats.rs",
    },
    // The flat-arena population's live state: the think-timer arena and
    // the population itself fork through manual per-field clones (the
    // population shares its browsing model by Arc and its sample store by
    // COW). A field missed by either impl would silently reset — or worse,
    // alias — on every fork of a 100k-user cell.
    SnapshotTarget {
        struct_name: "ThinkArena",
        struct_file: "crates/workload/src/arena.rs",
        clone_file: "crates/workload/src/arena.rs",
    },
    SnapshotTarget {
        struct_name: "ClosedLoopUsers",
        struct_file: "crates/workload/src/users.rs",
        clone_file: "crates/workload/src/users.rs",
    },
    // The resilience layer's kernel state: in-flight deadline timers and
    // circuit-breaker banks must survive checkpoint/fork bit-identically —
    // a dropped field would mean timers silently vanishing (requests that
    // never time out) or breakers resetting to closed on every fork.
    SnapshotTarget {
        struct_name: "DeadlineQueues",
        struct_file: "crates/microsim/src/resilience.rs",
        clone_file: "crates/microsim/src/resilience.rs",
    },
    SnapshotTarget {
        struct_name: "BreakerBank",
        struct_file: "crates/microsim/src/resilience.rs",
        clone_file: "crates/microsim/src/resilience.rs",
    },
];

/// Checks one tracked struct: every field of `struct_name` (parsed from
/// `struct_toks`) must be referenced inside the `impl Clone for
/// <struct_name>` block in `clone_toks`.
pub fn check_target(
    target: &SnapshotTarget<'_>,
    struct_toks: &[Token],
    clone_toks: &[Token],
    out: &mut Vec<Diagnostic>,
) {
    let Some(fields) = struct_fields(struct_toks, target.struct_name) else {
        out.push(Diagnostic::new(
            SNAPSHOT_COMPLETE,
            target.struct_file,
            1,
            format!(
                "tracked snapshot struct `{}` not found in this file; update simlint's TARGETS if it moved",
                target.struct_name
            ),
        ));
        return;
    };
    let Some((body_start, body_end, impl_line)) =
        impl_block(clone_toks, "Clone", target.struct_name)
    else {
        out.push(Diagnostic::new(
            SNAPSHOT_COMPLETE,
            target.clone_file,
            1,
            format!(
                "no `impl Clone for {}` found; the snapshot path must clone every field explicitly",
                target.struct_name
            ),
        ));
        return;
    };
    let body = &clone_toks[body_start..body_end];
    for (field, _line) in &fields {
        let referenced = body.iter().any(|t| t.is_ident(field));
        if !referenced {
            out.push(Diagnostic::new(
                SNAPSHOT_COMPLETE,
                target.clone_file,
                impl_line,
                format!(
                    "`impl Clone for {}` does not reference field `{}` (declared in {}); a fork would silently drop it — clone it explicitly",
                    target.struct_name, field, target.struct_file
                ),
            ));
        }
    }
}

/// Per-file agent check: every `impl Agent for X` needs a complete `Clone`
/// for `X` so `Agent::snapshot` can capture it.
pub fn check_agents(path: &str, lexed: &crate::lexer::Lexed, out: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for (name, impl_line) in agent_impls(toks) {
        let Some(fields) = struct_fields(toks, &name) else {
            // Struct defined in another file (or a unit/tuple struct):
            // out of reach for a per-file scan; the derive on the struct's
            // own file still gets checked when that file is linted.
            continue;
        };
        if derives_of(toks, &name).iter().any(|d| d == "Clone") {
            continue; // derived Clone is complete by construction
        }
        if let Some((body_start, body_end, clone_line)) = impl_block(toks, "Clone", &name) {
            let body = &toks[body_start..body_end];
            for (field, _) in &fields {
                if !body.iter().any(|t| t.is_ident(field)) {
                    out.push(Diagnostic::new(
                        SNAPSHOT_COMPLETE,
                        path,
                        clone_line,
                        format!(
                            "agent `{name}`'s manual `impl Clone` does not reference field `{field}`; `Agent::snapshot` captures agents by cloning, so the fork would drop it"
                        ),
                    ));
                }
            }
        } else {
            out.push(Diagnostic::new(
                SNAPSHOT_COMPLETE,
                path,
                impl_line,
                format!(
                    "`{name}` implements `Agent` but has no `Clone`; without it the agent cannot be captured by `Agent::snapshot` and any simulation containing it cannot be checkpointed"
                ),
            ));
        }
    }
}

/// Finds `impl [path::]Agent for X` headers; returns `(X, line)` pairs.
fn agent_impls(toks: &[Token]) -> Vec<(String, u32)> {
    let mut found = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("Agent") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_ident("for")) {
            continue;
        }
        let Some(name) = toks.get(i + 2).and_then(Token::ident) else {
            continue;
        };
        // Require an `impl` keyword shortly before, with only path segments
        // or generics between (`impl Agent for X`, `impl microsim::Agent
        // for X`, `impl<T> Agent for X<T>`).
        let lo = i.saturating_sub(12);
        if toks[lo..i].iter().any(|t| t.is_ident("impl")) {
            found.push((name.to_string(), toks[i].line));
        }
    }
    found
}

/// One parsed struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// The field's name.
    pub name: String,
    /// 1-based line of the field's name.
    pub line: u32,
    /// `true` when the field's type mentions `Arc` — i.e. the field is (or
    /// contains) a shared copy-on-write spine.
    pub arc: bool,
}

/// Parses the named struct's fields: `(name, line)` per field. Returns
/// `None` when the struct is absent or has no brace-delimited field list.
pub fn struct_fields(toks: &[Token], name: &str) -> Option<Vec<(String, u32)>> {
    struct_fields_ex(toks, name)
        .map(|fields| fields.into_iter().map(|f| (f.name, f.line)).collect())
}

/// Parses the named struct's fields with type information (see [`Field`]).
pub fn struct_fields_ex(toks: &[Token], name: &str) -> Option<Vec<Field>> {
    let mut i = 0usize;
    {
        // Find `struct <name>`.
        while i < toks.len() {
            if toks[i].is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
                break;
            }
            i += 1;
        }
        if i >= toks.len() {
            return None;
        }
        i += 2;
        // Skip generics.
        if toks.get(i).is_some_and(|t| t.is_punct('<')) {
            let mut angle = 0i32;
            while i < toks.len() {
                if toks[i].is_punct('<') {
                    angle += 1;
                } else if toks[i].is_punct('>') && !toks[i - 1].is_punct('-') {
                    angle -= 1;
                    if angle == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        // Skip a where-clause up to `{` or `;`.
        while i < toks.len() && !toks[i].is_punct('{') && !toks[i].is_punct(';') {
            i += 1;
        }
        if !toks.get(i).is_some_and(|t| t.is_punct('{')) {
            return None; // unit or tuple struct
        }
        Some(parse_field_list(toks, i))
    }
}

/// Parses a brace-delimited field list starting at the `{` index.
fn parse_field_list(toks: &[Token], open: usize) -> Vec<Field> {
    let mut fields: Vec<Field> = Vec::new();
    let mut i = open + 1;
    let mut depth = 1i32; // brace depth relative to the struct body
    let mut expecting_field = true;
    let mut nest = 0i32; // (), [], <> nesting inside a field's type
    while i < toks.len() && depth > 0 {
        let t = &toks[i];
        match &t.kind {
            crate::lexer::TokenKind::Punct('{') => depth += 1,
            crate::lexer::TokenKind::Punct('}') => depth -= 1,
            crate::lexer::TokenKind::Punct('#') if depth == 1 && expecting_field => {
                i = skip_attr(toks, i);
                continue;
            }
            crate::lexer::TokenKind::Punct('(' | '[') => nest += 1,
            crate::lexer::TokenKind::Punct(')' | ']') => nest -= 1,
            crate::lexer::TokenKind::Punct('<') if depth == 1 => nest += 1,
            crate::lexer::TokenKind::Punct('>') if depth == 1 && !toks[i - 1].is_punct('-') => {
                nest -= 1;
            }
            crate::lexer::TokenKind::Punct(',') if depth == 1 && nest == 0 => {
                expecting_field = true;
                i += 1;
                continue;
            }
            crate::lexer::TokenKind::Ident(id) if depth == 1 && nest == 0 && expecting_field => {
                if id == "pub" {
                    // `pub` or `pub(crate)`: the visibility parens are
                    // consumed via `nest` below, so just move on.
                    i += 1;
                    if toks.get(i).is_some_and(|t| t.is_punct('(')) {
                        let mut p = 0i32;
                        while i < toks.len() {
                            if toks[i].is_punct('(') {
                                p += 1;
                            } else if toks[i].is_punct(')') {
                                p -= 1;
                                if p == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            i += 1;
                        }
                    }
                    continue;
                }
                if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && !toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                {
                    fields.push(Field {
                        name: id.clone(),
                        line: t.line,
                        arc: false,
                    });
                    expecting_field = false;
                }
            }
            crate::lexer::TokenKind::Ident(id) if depth == 1 && !expecting_field && id == "Arc" => {
                if let Some(last) = fields.last_mut() {
                    last.arc = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    fields
}

/// Finds `impl [<generics>] <trait_name> for <type_name>` and returns the
/// token range of its `{ ... }` body plus the header's line.
pub fn impl_block(
    toks: &[Token],
    trait_name: &str,
    type_name: &str,
) -> Option<(usize, usize, u32)> {
    for i in 0..toks.len() {
        if !toks[i].is_ident(trait_name) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_ident("for")) {
            continue;
        }
        if !toks.get(i + 2).is_some_and(|t| t.is_ident(type_name)) {
            continue;
        }
        let lo = i.saturating_sub(16);
        if !toks[lo..i].iter().any(|t| t.is_ident("impl")) {
            continue;
        }
        let line = toks[i].line;
        // Find the body's opening brace (past generics/where on the type).
        let mut j = i + 3;
        while j < toks.len() && !toks[j].is_punct('{') {
            j += 1;
        }
        let start = j + 1;
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return Some((start, j, line));
                }
            }
            j += 1;
        }
        return Some((start, toks.len(), line));
    }
    None
}

/// Derive idents attached to the named struct (empty when underived).
pub fn derives_of(toks: &[Token], name: &str) -> Vec<String> {
    let mut derives = Vec::new();
    // Locate `struct <name>` and walk backwards over attribute groups.
    let Some(pos) = (0..toks.len())
        .find(|&i| toks[i].is_ident("struct") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)))
    else {
        return derives;
    };
    let mut j = pos;
    // Step back over `pub` and visibility parens.
    while j > 0 && (toks[j - 1].is_ident("pub") || toks[j - 1].is_punct(')')) {
        if toks[j - 1].is_ident("pub") {
            j -= 1;
        } else {
            // `pub(crate)` — step back over the paren group then the `pub`.
            let mut p = 0i32;
            while j > 0 {
                if toks[j - 1].is_punct(')') {
                    p += 1;
                } else if toks[j - 1].is_punct('(') {
                    p -= 1;
                }
                j -= 1;
                if p == 0 {
                    break;
                }
            }
        }
    }
    // Now step back over `#[...]` groups, collecting derive contents.
    while j >= 1 && toks[j - 1].is_punct(']') {
        let close = j - 1;
        let mut depth = 0i32;
        let mut open = close;
        loop {
            if toks[open].is_punct(']') {
                depth += 1;
            } else if toks[open].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if open == 0 {
                return derives;
            }
            open -= 1;
        }
        if open >= 1 && toks[open - 1].is_punct('#') {
            let group = &toks[open + 1..close];
            if group.first().is_some_and(|t| t.is_ident("derive")) {
                for t in group {
                    if let Some(id) = t.ident() {
                        if id != "derive" {
                            derives.push(id.to_string());
                        }
                    }
                }
            }
            j = open - 1;
        } else {
            break;
        }
    }
    derives
}
