//! The intra-workspace function graph: every parsed `fn` item is a node,
//! and call sites resolve to candidate nodes by name (and impl type, when
//! the call is `Type::method(...)`-qualified).
//!
//! Resolution is deliberately over-approximate — a `.push(...)` call
//! resolves to *every* workspace method named `push` — because the lexer is
//! type-blind. For hot-path propagation that is the safe direction: marking
//! too much hot surfaces allocations for human review (with the `allow`
//! escape hatch); marking too little would silently admit them.
//!
//! Propagation never descends into functions that are cold by convention:
//! trait machinery (`Clone`, `Debug`, `Hash`, ...) runs at fork/report time,
//! not inside the event loop, and pulling every `clone` body into the hot
//! set would drown the signal.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{Call, CallKind, FnItem};
use crate::SrcFile;

/// One node: `files[file].fns[item]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeId {
    /// Index into the model's file list.
    pub file: usize,
    /// Index into that file's `fns`.
    pub item: usize,
}

/// Method and function names hotness never propagates *into*: these are
/// fork/serialize/report-time entry points even when a hot function calls
/// them (e.g. an `Arc` handle clone inside the kernel).
const COLD_FN_NAMES: [&str; 13] = [
    "clone",
    "clone_from",
    "cmp",
    "default",
    "deserialize",
    "drop",
    "eq",
    "fmt",
    "from_value",
    "hash",
    "ne",
    "partial_cmp",
    "serialize",
];

/// Traits whose impl bodies are cold by convention.
const COLD_TRAITS: [&str; 12] = [
    "Clone",
    "Debug",
    "Default",
    "Deserialize",
    "Display",
    "Drop",
    "Eq",
    "Hash",
    "Ord",
    "PartialEq",
    "PartialOrd",
    "Serialize",
];

/// The resolved function graph over a set of parsed files.
#[derive(Debug)]
pub struct FnGraph<'a> {
    /// The files the graph was built from (same order as the model).
    pub files: &'a [SrcFile],
    /// All nodes, ordered by (file, item) — i.e. source order.
    pub nodes: Vec<NodeId>,
    by_method: BTreeMap<String, Vec<NodeId>>,
    by_typed: BTreeMap<(String, String), Vec<NodeId>>,
    by_free: BTreeMap<String, Vec<NodeId>>,
}

impl<'a> FnGraph<'a> {
    /// Builds the graph: indexes every `fn` item by name, by (impl type,
    /// name), and — for free functions — by bare name.
    pub fn build(files: &'a [SrcFile]) -> FnGraph<'a> {
        let mut g = FnGraph {
            files,
            nodes: Vec::new(),
            by_method: BTreeMap::new(),
            by_typed: BTreeMap::new(),
            by_free: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.fns.iter().enumerate() {
                let id = NodeId { file: fi, item: ii };
                g.nodes.push(id);
                match &f.impl_type {
                    Some(ty) => {
                        g.by_method.entry(f.name.clone()).or_default().push(id);
                        g.by_typed
                            .entry((ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => g.by_free.entry(f.name.clone()).or_default().push(id),
                }
            }
        }
        g
    }

    /// The `FnItem` behind a node.
    pub fn item(&self, id: NodeId) -> &'a FnItem {
        &self.files[id.file].fns[id.item]
    }

    /// All nodes implementing `type_name::fn_name`.
    pub fn typed(&self, type_name: &str, fn_name: &str) -> &[NodeId] {
        self.by_typed
            .get(&(type_name.to_string(), fn_name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// Candidate callees for a call site inside `caller`.
    pub fn resolve(&self, caller: NodeId, call: &Call) -> Vec<NodeId> {
        match call.kind {
            CallKind::Method => self
                .by_method
                .get(call.name.as_str())
                .cloned()
                .unwrap_or_default(),
            CallKind::Qualified => {
                let q = call.qualifier.as_deref().unwrap_or("");
                let q = if q == "Self" || q == "self" {
                    self.item(caller).impl_type.as_deref().unwrap_or("")
                } else {
                    q
                };
                if q.starts_with(|c: char| c.is_uppercase()) {
                    self.typed(q, &call.name).to_vec()
                } else {
                    // Module-qualified (`stats::quantile(...)`): free fns.
                    self.by_free
                        .get(call.name.as_str())
                        .cloned()
                        .unwrap_or_default()
                }
            }
            CallKind::Plain => self
                .by_free
                .get(call.name.as_str())
                .cloned()
                .unwrap_or_default(),
            CallKind::Macro => Vec::new(),
        }
    }

    /// `true` when hotness must not propagate into this node.
    fn is_cold(&self, id: NodeId) -> bool {
        let f = self.item(id);
        if COLD_FN_NAMES.contains(&f.name.as_str()) {
            return true;
        }
        f.impl_trait
            .as_deref()
            .is_some_and(|tr| COLD_TRAITS.contains(&tr))
    }

    /// Propagates hotness from `seeds` (resolved `(type, fn)` pairs) through
    /// workspace-local calls. Returns the hot set as a map from node to the
    /// caller it was first reached from (`None` for seeds), plus the seeds
    /// that did not resolve to any node.
    #[allow(clippy::type_complexity)]
    pub fn hot_set<'s>(
        &self,
        seeds: &'s [(&'s str, &'s str)],
    ) -> (BTreeMap<NodeId, Option<NodeId>>, Vec<(&'s str, &'s str)>) {
        let mut hot: BTreeMap<NodeId, Option<NodeId>> = BTreeMap::new();
        let mut missing = Vec::new();
        let mut frontier = VecDeque::new();
        for &(ty, name) in seeds {
            let nodes = self.typed(ty, name);
            if nodes.is_empty() {
                missing.push((ty, name));
            }
            for &n in nodes {
                if hot.insert(n, None).is_none() {
                    frontier.push_back(n);
                }
            }
        }
        while let Some(n) = frontier.pop_front() {
            // Deterministic order: resolve calls in source order, dedupe via
            // the BTreeMap.
            let mut callees = BTreeSet::new();
            for call in &self.item(n).calls {
                for callee in self.resolve(n, call) {
                    callees.insert(callee);
                }
            }
            for callee in callees {
                if self.is_cold(callee) || hot.contains_key(&callee) {
                    continue;
                }
                hot.insert(callee, Some(n));
                frontier.push_back(callee);
            }
        }
        (hot, missing)
    }

    /// Renders the call chain that made `id` hot, e.g.
    /// `Kernel::pump → handle_sample → record_access`.
    pub fn hot_chain(&self, hot: &BTreeMap<NodeId, Option<NodeId>>, id: NodeId) -> String {
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            names.push(self.qualified_name(n));
            cur = hot.get(&n).copied().flatten();
            if names.len() > 8 {
                names.push("…".to_string());
                break;
            }
        }
        names.reverse();
        names.join(" → ")
    }

    /// `Type::name` or `name` for display.
    pub fn qualified_name(&self, id: NodeId) -> String {
        let f = self.item(id);
        match &f.impl_type {
            Some(ty) => format!("{ty}::{}", f.name),
            None => f.name.clone(),
        }
    }
}
