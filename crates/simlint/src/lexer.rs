//! A minimal Rust lexer: just enough structure to token-scan source files
//! for determinism hazards.
//!
//! The lexer strips comments and string/char literals (their contents can
//! never be a hazard, and leaving them in would produce false positives on
//! doc prose like "uses `std::time::Instant`"), keeps identifiers and
//! punctuation with their line numbers, and collects `simlint: allow(...)`
//! directives out of the stripped comments. It is deliberately not a parser:
//! every rule downstream works on token patterns, which keeps the whole
//! crate dependency-free and fast enough to run on the full workspace in a
//! few milliseconds.

use std::collections::BTreeMap;

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Byte offset of the token's first byte in the source.
    pub start: u32,
    /// Byte offset one past the token's last byte.
    pub end: u32,
    /// The token's kind and payload.
    pub kind: TokenKind,
}

/// What kind of token this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `HashMap`, `sum`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `:`, `<`, `{`, ...).
    Punct(char),
    /// A numeric literal (value irrelevant to every rule).
    Num,
    /// A lifetime (`'a`); kept distinct so it is never confused with
    /// punctuation.
    Lifetime,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(i) if i == s)
    }

    /// `true` when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A lexed file: the token stream plus the allow directives found in its
/// comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literals stripped.
    pub tokens: Vec<Token>,
    /// Lines carrying a `simlint: allow(rule, ...)` comment, mapped to the
    /// rule ids they allow. A directive suppresses matching diagnostics on
    /// its own line and on the following line (so it can trail the flagged
    /// expression or sit on its own line above it).
    pub allows: BTreeMap<u32, Vec<String>>,
}

impl Lexed {
    /// `true` when a diagnostic of `rule` at `line` is suppressed by an
    /// allow directive on the same line or the line above.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.allows
                .get(l)
                .is_some_and(|rules| rules.iter().any(|r| r == rule))
        })
    }
}

/// Lexes `src`, stripping comments and literals.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.bytes().filter(|&b| b == b'\n').count() as u32
        };
    }

    while i < bytes.len() {
        // Decode the real char: a raw `bytes[i] as char` cast would read a
        // multibyte lead byte as its Latin-1 look-alike and mis-dispatch
        // (e.g. U+2028's lead byte casts to the alphabetic 'â').
        let Some(c) = src[i..].chars().next() else {
            break;
        };
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += c.len_utf8(),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |o| i + o);
                scan_allow_directive(&src[i..end], line, &mut out.allows);
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting respected.
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_allow_directive(&src[start..i], line, &mut out.allows);
                bump_lines!(&src[start..i]);
            }
            '"' => {
                let end = skip_string(bytes, i);
                bump_lines!(&src[i..end]);
                i = end;
            }
            'r' | 'b' if starts_raw_string(bytes, i) => {
                let end = skip_raw_string(bytes, i);
                bump_lines!(&src[i..end]);
                i = end;
            }
            'b' if bytes.get(i + 1) == Some(&b'"') => {
                let end = skip_string(bytes, i + 1);
                bump_lines!(&src[i..end]);
                i = end;
            }
            '\'' => {
                // Char literal or lifetime. `'\x'`-style escapes and `'a'`
                // are literals; `'a` followed by anything but `'` is a
                // lifetime.
                if bytes.get(i + 1) == Some(&b'\\') {
                    // Escaped char literal: skip to the closing quote.
                    let mut j = i + 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    let end = (j + 1).min(bytes.len());
                    bump_lines!(&src[i..end]);
                    i = end;
                } else {
                    // Find the extent of the would-be char/lifetime.
                    let rest = &src[i + 1..];
                    let ident_len = rest
                        .char_indices()
                        .take_while(|(_, ch)| ch.is_alphanumeric() || *ch == '_')
                        .last()
                        .map_or(0, |(o, ch)| o + ch.len_utf8());
                    if ident_len > 0 && rest[ident_len..].starts_with('\'') {
                        // 'a' — a char literal.
                        i += 1 + ident_len + 1;
                    } else if ident_len > 0 {
                        out.tokens.push(Token {
                            line,
                            start: i as u32,
                            end: (i + 1 + ident_len) as u32,
                            kind: TokenKind::Lifetime,
                        });
                        i += 1 + ident_len;
                    } else {
                        // A bare quote (e.g. `'('`): treat as a char literal.
                        let mut j = i + 1;
                        let mut seen = false;
                        while j < bytes.len() && (!seen || bytes[j] != b'\'') {
                            seen = true;
                            j += 1;
                        }
                        let end = (j + 1).min(bytes.len());
                        bump_lines!(&src[i..end]);
                        i = end;
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let rest = &src[i..];
                let len = rest
                    .char_indices()
                    .take_while(|(_, ch)| ch.is_alphanumeric() || *ch == '_')
                    .last()
                    .map_or(1, |(o, ch)| o + ch.len_utf8());
                out.tokens.push(Token {
                    line,
                    start: i as u32,
                    end: (i + len) as u32,
                    kind: TokenKind::Ident(rest[..len].to_string()),
                });
                i += len;
            }
            c if c.is_ascii_digit() => {
                // Numeric literal incl. type suffix, underscores, hex. A `.`
                // is part of the literal only when followed by a digit, so
                // `1..10` and `1.method()` are not swallowed.
                let mut end = i + 1;
                while end < bytes.len() {
                    let b = bytes[end] as char;
                    let continues = b.is_ascii_alphanumeric()
                        || b == '_'
                        || (b == '.' && bytes.get(end + 1).is_some_and(u8::is_ascii_digit));
                    if !continues {
                        break;
                    }
                    end += 1;
                }
                out.tokens.push(Token {
                    line,
                    start: i as u32,
                    end: end as u32,
                    kind: TokenKind::Num,
                });
                i = end;
            }
            c => {
                out.tokens.push(Token {
                    line,
                    start: i as u32,
                    end: (i + c.len_utf8()) as u32,
                    kind: TokenKind::Punct(c),
                });
                i += c.len_utf8();
            }
        }
    }
    out
}

/// Records the rules named by a `simlint: allow(a, b)` directive in
/// `comment` (which may span lines; the directive applies at its own line).
fn scan_allow_directive(comment: &str, first_line: u32, allows: &mut BTreeMap<u32, Vec<String>>) {
    for (off, text) in comment.lines().enumerate() {
        let Some(pos) = text.find("simlint:") else {
            continue;
        };
        let rest = text[pos + "simlint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            continue;
        };
        let args = args.trim_start();
        let Some(inner) = args.strip_prefix('(').and_then(|a| a.split(')').next()) else {
            continue;
        };
        let line = first_line + off as u32;
        let entry = allows.entry(line).or_default();
        for rule in inner.split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                entry.push(rule.to_string());
            }
        }
    }
}

/// `true` when `bytes[i..]` starts a raw (byte) string: `r"`, `r#`, `br"`,
/// `br#`.
fn starts_raw_string(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    matches!(bytes.get(j + 1), Some(&b'"') | Some(&b'#'))
}

/// Skips a `"..."` string starting at the opening quote index; returns the
/// index one past the closing quote.
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string `r##"..."##` starting at `r`/`b`; returns the index
/// one past the closing delimiter.
fn skip_raw_string(bytes: &[u8], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    i += 1; // past 'r'
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return i;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while h < hashes && bytes.get(j) == Some(&b'#') {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r#"
// Instant in a comment
/* HashMap in /* a nested */ block */
let x = "std::time::Instant";
let y = foo; // trailing
"#;
        assert_eq!(idents(src), ["let", "x", "let", "y", "foo"]);
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"thread_rng\"#; let c = 'x'; fn f<'a>(v: &'a str) {}";
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "impl<'a> Foo<'a> { fn g(&'a self) -> &'a T { x } }";
        let ids = idents(src);
        assert!(ids.contains(&"self".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn allow_directives_are_collected() {
        let src = "\nlet a = 1; // simlint: allow(nondet-source)\n// simlint: allow(unordered-iter, float-order)\nlet b = 2;\n";
        let lexed = lex(src);
        assert!(lexed.is_allowed("nondet-source", 2));
        assert!(lexed.is_allowed("unordered-iter", 4)); // line above
        assert!(lexed.is_allowed("float-order", 3));
        assert!(!lexed.is_allowed("nondet-source", 4));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;";
        let lexed = lex(src);
        let t = lexed
            .tokens
            .iter()
            .find(|tok| tok.is_ident("t"))
            .expect("t");
        assert_eq!(t.line, 4);
    }
}
