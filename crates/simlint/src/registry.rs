//! The rule registry: every rule id simlint can emit, with its default
//! severity and a one-line description.
//!
//! The registry is the single source of truth consumed by `--list-rules`,
//! the SARIF `rules` array, and the allow-directive validator (an allow
//! naming a rule that is not registered is itself a diagnostic, so typoed
//! suppressions can never silently disable nothing).

use std::fmt;

/// How severe a finding is.
///
/// `Error` findings gate CI (exit code 1); `Warning` findings are advisory:
/// they are reported in every output format but never affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; reported but never gates.
    Warning,
    /// Gates the build.
    Error,
}

impl Severity {
    /// The lowercase name used in JSON/SARIF output (`"warning"`/`"error"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One registered rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable rule id, as written in `allow(...)` directives.
    pub id: &'static str,
    /// Default severity of the rule's findings.
    pub severity: Severity,
    /// One-line description shown by `--list-rules` and in SARIF metadata.
    pub summary: &'static str,
}

/// Every rule simlint can emit, in stable (alphabetical) order.
pub const RULES: [Rule; 9] = [
    Rule {
        id: "bad-allow",
        severity: Severity::Error,
        summary: "a `simlint: allow(...)` directive names a rule id that does not exist",
    },
    Rule {
        id: "cow-discipline",
        severity: Severity::Error,
        summary: "a shared copy-on-write spine is mutated without flowing through Arc::make_mut",
    },
    Rule {
        id: "float-order",
        severity: Severity::Error,
        summary: "float reduction over an unordered iteration (result depends on hash order)",
    },
    Rule {
        id: "hot-path-alloc",
        severity: Severity::Error,
        summary: "heap allocation in a function reachable from a kernel hot entry point",
    },
    Rule {
        id: "naive-twin",
        severity: Severity::Error,
        summary: "an indexed query entry point lacks a *_naive full-scan twin exercised by a test",
    },
    Rule {
        id: "nondet-source",
        severity: Severity::Error,
        summary: "wall clock, OS entropy, environment reads, or raw threads in simulation code",
    },
    Rule {
        id: "snapshot-complete",
        severity: Severity::Error,
        summary: "a tracked snapshot struct's Clone path does not reference every field",
    },
    Rule {
        id: "unordered-iter",
        severity: Severity::Error,
        summary: "iterating a HashMap/HashSet, whose order is unspecified across runs",
    },
    Rule {
        id: "unused-allow",
        severity: Severity::Warning,
        summary: "a `simlint: allow(...)` directive suppresses nothing on its line or the next",
    },
];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// The default severity for a rule id (`Error` for ids not in the registry,
/// which cannot occur for diagnostics simlint itself constructs).
pub fn default_severity(id: &str) -> Severity {
    rule(id).map_or(Severity::Error, |r| r.severity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in RULES.windows(2) {
            assert!(pair[0].id < pair[1].id, "RULES must stay sorted by id");
        }
    }

    #[test]
    fn lookup_finds_every_rule() {
        for r in &RULES {
            assert_eq!(rule(r.id).unwrap().id, r.id);
        }
        assert!(rule("no-such-rule").is_none());
    }
}
