//! Rule `hot-path-alloc`: no heap allocation reachable from the kernel's
//! hot entry points.
//!
//! The BENCH budget (`allocs_per_request` 0.65) holds because the event
//! loop's steady state — event dispatch, queue push/pop, segmented-log
//! appends — runs allocation-free except for the amortized segment-seal
//! paths, which carry reviewed `allow`s. This rule keeps it that way
//! statically: seed the function graph with the hot entry points, propagate
//! hotness through workspace-local calls, and flag every allocation
//! constructor in a hot body.
//!
//! A seed that no longer resolves (the entry point was renamed) is itself a
//! diagnostic, so a refactor can never silently disable the rule.
//!
//! `.clone()` is reported at `warning` severity only: the lexer is
//! type-blind and most hot-path clones are `Arc` handle bumps, not heap
//! copies. Everything else (`vec!`, `Vec::new`, `collect`, `to_string`,
//! ...) is an error.

use crate::graph::FnGraph;
use crate::lexer::Token;
use crate::registry::Severity;
use crate::{Diagnostic, SrcFile};

/// Rule id.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";

/// One hot entry point: `type_name::fn_name`, with the file diagnostics
/// anchor to when the seed fails to resolve.
#[derive(Debug, Clone, Copy)]
pub struct Seed {
    /// The impl type of the entry point.
    pub type_name: &'static str,
    /// The method name.
    pub fn_name: &'static str,
    /// Workspace-relative path expected to define it.
    pub anchor_file: &'static str,
}

/// The kernel's hot entry points. `Kernel::pump` is the event-dispatch loop
/// (the paper's per-request steady state) and `Kernel::submit` the client
/// admission path; the queue and the segmented stores are the data
/// structures they hammer per event.
pub const HOT_SEEDS: [Seed; 12] = [
    Seed {
        type_name: "Kernel",
        fn_name: "pump",
        anchor_file: "crates/microsim/src/kernel.rs",
    },
    Seed {
        type_name: "Kernel",
        fn_name: "submit",
        anchor_file: "crates/microsim/src/kernel.rs",
    },
    Seed {
        type_name: "EventQueue",
        fn_name: "push",
        anchor_file: "crates/simnet/src/event.rs",
    },
    Seed {
        type_name: "EventQueue",
        fn_name: "pop",
        anchor_file: "crates/simnet/src/event.rs",
    },
    Seed {
        type_name: "SegLog",
        fn_name: "push",
        anchor_file: "crates/microsim/src/seglog.rs",
    },
    Seed {
        type_name: "SegSamples",
        fn_name: "push",
        anchor_file: "crates/simnet/src/stats.rs",
    },
    // The flat-arena population's per-event entry points: every response
    // and every think-bucket wakeup of a 100k-user cell runs through
    // these, so a stray allocation here is paid O(requests) per run.
    Seed {
        type_name: "ThinkArena",
        fn_name: "schedule",
        anchor_file: "crates/workload/src/arena.rs",
    },
    Seed {
        type_name: "ThinkArena",
        fn_name: "drain_into",
        anchor_file: "crates/workload/src/arena.rs",
    },
    Seed {
        type_name: "ClosedLoopUsers",
        fn_name: "on_response",
        anchor_file: "crates/workload/src/users.rs",
    },
    Seed {
        type_name: "ClosedLoopUsers",
        fn_name: "on_wake",
        anchor_file: "crates/workload/src/users.rs",
    },
    // The resilience layer's per-event paths: every submission with a
    // deadline arms a timer, and every expiry/shed/rejection runs the
    // failure path — both are paid O(requests) on a shedding topology, so
    // they must stay allocation-free like the rest of the kernel loop.
    Seed {
        type_name: "DeadlineQueues",
        fn_name: "arm",
        anchor_file: "crates/microsim/src/resilience.rs",
    },
    Seed {
        type_name: "Kernel",
        fn_name: "fail_attempt",
        anchor_file: "crates/microsim/src/kernel.rs",
    },
];

/// Types whose `::new`/`::with_capacity`/`::from` constructors allocate.
const ALLOC_TYPES: [&str; 11] = [
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "Box",
    "HashMap",
    "HashSet",
    "Rc",
    "String",
    "Vec",
    "VecDeque",
];

/// Allocating constructor method names on [`ALLOC_TYPES`].
const ALLOC_CTORS: [&str; 3] = ["from", "new", "with_capacity"];

/// Allocating macros.
const ALLOC_MACROS: [&str; 2] = ["format", "vec"];

/// Allocating methods (on any receiver).
const ALLOC_METHODS: [&str; 4] = ["collect", "to_owned", "to_string", "to_vec"];

/// Runs the rule over a model's files.
pub fn check(files: &[SrcFile], seeds: &[Seed], out: &mut Vec<Diagnostic>) {
    let graph = FnGraph::build(files);
    let pairs: Vec<(&str, &str)> = seeds.iter().map(|s| (s.type_name, s.fn_name)).collect();
    let (hot, missing) = graph.hot_set(&pairs);
    for (ty, name) in missing {
        let seed = seeds
            .iter()
            .find(|s| s.type_name == ty && s.fn_name == name)
            .expect("missing seed came from the seed list");
        out.push(Diagnostic::new(
            HOT_PATH_ALLOC,
            seed.anchor_file,
            1,
            format!(
                "hot-path seed `{ty}::{name}` not found in the workspace; update simlint's HOT_SEEDS if the entry point was renamed"
            ),
        ));
    }
    for &id in hot.keys() {
        let f = graph.item(id);
        if f.body.0 == f.body.1 {
            continue;
        }
        let file = &files[id.file];
        let body = &file.lexed.tokens[f.body.0..f.body.1];
        let chain = graph.hot_chain(&hot, id);
        scan_body(&file.path, body, &chain, out);
    }
}

/// Flags allocation sites in one hot body.
fn scan_body(path: &str, body: &[Token], chain: &str, out: &mut Vec<Diagnostic>) {
    for j in 0..body.len() {
        let Some(id) = body[j].ident() else {
            continue;
        };
        // `vec![...]` / `format!(...)`.
        if ALLOC_MACROS.contains(&id) && body.get(j + 1).is_some_and(|t| t.is_punct('!')) {
            push_alloc(
                path,
                body[j].line,
                &format!("`{id}!`"),
                chain,
                Severity::Error,
                out,
            );
            continue;
        }
        // `Vec::new(...)`, `Box::new(...)`, `String::from(...)`, ...
        if ALLOC_TYPES.contains(&id)
            && body.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && body.get(j + 2).is_some_and(|t| t.is_punct(':'))
        {
            if let Some(m) = body.get(j + 3).and_then(Token::ident) {
                if ALLOC_CTORS.contains(&m) {
                    push_alloc(
                        path,
                        body[j].line,
                        &format!("`{id}::{m}`"),
                        chain,
                        Severity::Error,
                        out,
                    );
                }
            }
            continue;
        }
        // `.collect(...)` / `.collect::<T>(...)` / `.to_string()` / ...
        if j > 0 && body[j - 1].is_punct('.') {
            let calls = body.get(j + 1).is_some_and(|t| t.is_punct('('))
                || (body.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    && body.get(j + 2).is_some_and(|t| t.is_punct(':'))
                    && body.get(j + 3).is_some_and(|t| t.is_punct('<')));
            if !calls {
                continue;
            }
            if ALLOC_METHODS.contains(&id) {
                push_alloc(
                    path,
                    body[j].line,
                    &format!("`.{id}()`"),
                    chain,
                    Severity::Error,
                    out,
                );
            } else if id == "clone" {
                push_alloc(
                    path,
                    body[j].line,
                    "`.clone()`",
                    chain,
                    Severity::Warning,
                    out,
                );
            }
        }
    }
}

fn push_alloc(
    path: &str,
    line: u32,
    what: &str,
    chain: &str,
    severity: Severity,
    out: &mut Vec<Diagnostic>,
) {
    let note = if severity == Severity::Warning {
        "; if this is an Arc handle bump, suppress with an allow"
    } else {
        "; hoist the allocation out of the hot path or carry a reviewed allow (e.g. amortized segment seals)"
    };
    out.push(
        Diagnostic::new(
            HOT_PATH_ALLOC,
            path,
            line,
            format!("{what} allocates on the kernel hot path ({chain}){note}"),
        )
        .with_severity(severity),
    );
}
