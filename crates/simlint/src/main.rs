//! CLI for the workspace determinism & invariant auditor.
//!
//! ```text
//! cargo run -p simlint -- --check [--format text|json|sarif] [--baseline <file>] [--root <dir>]
//! cargo run -p simlint -- --list-rules
//! ```
//!
//! Exit codes are stable (scripts and CI rely on them):
//!
//! * `0` — clean: no `error`-severity findings (warnings are advisory);
//! * `1` — at least one unsuppressed `error`-severity finding;
//! * `2` — internal error: bad usage, unreadable input, or no workspace.

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    // Harness code, not simulation code: reading argv/cwd here cannot
    // affect simulated histories.
    let args: Vec<String> = std::env::args().skip(1).collect(); // simlint: allow(nondet-source)
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {}                    // the default mode; kept for CI clarity
            "--json" => format = Format::Json, // alias for --format json
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "--format expects text|json|sarif, got {:?}",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                };
            }
            "--baseline" => {
                i += 1;
                let Some(p) = args.get(i) else {
                    eprintln!("--baseline expects a file path");
                    return ExitCode::from(2);
                };
                baseline_path = Some(PathBuf::from(p));
            }
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--root expects a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: simlint [--check] [--format text|json|sarif] [--baseline <file>] [--root <dir>]\n       simlint --list-rules\n\nexit codes: 0 clean (no error-severity findings), 1 violations, 2 internal error"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    if list_rules {
        for rule in &simlint::registry::RULES {
            println!("{:<18} {:<8} {}", rule.id, rule.severity, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?; // simlint: allow(nondet-source)
        simlint::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("could not find a workspace root (no Cargo.toml with [workspace]); use --root");
        return ExitCode::from(2);
    };
    if !root.is_dir() {
        eprintln!("workspace root {} is not a directory", root.display());
        return ExitCode::from(2);
    }

    let diagnostics = match simlint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };

    let (diagnostics, baselined) = match &baseline_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let entries = simlint::output::parse_baseline(&text);
                simlint::output::apply_baseline(diagnostics, &entries)
            }
            Err(e) => {
                eprintln!("simlint: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => (diagnostics, 0),
    };

    match format {
        Format::Json => println!("{}", simlint::output::json_array(&diagnostics)),
        Format::Sarif => println!("{}", simlint::output::sarif(&diagnostics)),
        Format::Text => {
            for d in &diagnostics {
                println!("{d}");
            }
            let errors = diagnostics
                .iter()
                .filter(|d| d.severity == simlint::registry::Severity::Error)
                .count();
            let warnings = diagnostics.len() - errors;
            if diagnostics.is_empty() {
                eprintln!("simlint: workspace clean");
            } else {
                eprintln!(
                    "simlint: {errors} error(s), {warnings} warning(s); suppress a reviewed line with `// simlint: allow(<rule>)`"
                );
            }
            if baselined > 0 {
                eprintln!("simlint: {baselined} baselined finding(s) suppressed");
            }
        }
    }

    if simlint::output::has_errors(&diagnostics) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
