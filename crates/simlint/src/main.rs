//! CLI for the workspace determinism auditor.
//!
//! ```text
//! cargo run -p simlint -- --check [--json] [--root <dir>]
//! ```
//!
//! Exits 0 when the workspace is clean, 1 when any rule fires, 2 on usage
//! errors. `--json` emits one JSON array of findings on stdout instead of
//! the human-readable lines.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Harness code, not simulation code: reading argv/cwd here cannot
    // affect simulated histories.
    let args: Vec<String> = std::env::args().skip(1).collect(); // simlint: allow(nondet-source)
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {} // the default (and only) mode; kept for CI clarity
            "--json" => json = true,
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--root expects a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                eprintln!("usage: simlint [--check] [--json] [--root <dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}; try --help");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?; // simlint: allow(nondet-source)
        simlint::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("could not find a workspace root (no Cargo.toml with [workspace]); use --root");
        return ExitCode::from(2);
    };

    let diagnostics = match simlint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        let items: Vec<String> = diagnostics
            .iter()
            .map(simlint::Diagnostic::to_json)
            .collect();
        println!("[{}]", items.join(","));
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        if diagnostics.is_empty() {
            eprintln!("simlint: workspace clean");
        } else {
            eprintln!(
                "simlint: {} finding(s); suppress a reviewed line with `// simlint: allow(<rule>)`",
                diagnostics.len()
            );
        }
    }
    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
