//! Rule `cow-discipline`: shared copy-on-write spines may only be mutated
//! through `Arc::make_mut`.
//!
//! The fork machinery (PR 2/5) relies on every segmented store sharing its
//! sealed segments between a simulation and its forks via
//! `Arc<Vec<Arc<Seg>>>` spines. The single invariant that keeps forks
//! byte-identical to cold runs is that *every* in-place mutation of such a
//! spine goes through `Arc::make_mut`, which copies the spine exactly when
//! it is shared. A direct `.push(...)`, an index-assign, or an
//! `Arc::get_mut(...)` sidesteps the copy: `get_mut` silently returns `None`
//! for shared spines, and a direct mutation would not compile today but one
//! `Arc` wrapper dropped during a refactor makes it compile tomorrow — with
//! forks silently observing each other's writes. This rule makes every such
//! site a CI failure.
//!
//! Registered spine types are the explicit [`COW_TYPES`] list plus any
//! snapshot-complete TARGET whose struct carries an `Arc`-typed field.
//! Spine fields are the `Arc`-typed fields of a registered struct. Within
//! every `impl` block of a registered type, a statement that touches
//! `self.<spine>` may not contain a mutating method call on that spine's
//! chain, an index-assign, a raw `&mut self.<spine>` borrow, or
//! `Arc::get_mut` — unless the statement flows through `Arc::make_mut`.
//! Whole-field replacement (`self.spine = Arc::new(...)`) is COW-safe and
//! stays legal.

use std::collections::BTreeMap;

use crate::lexer::Token;
use crate::parse::FnItem;
use crate::snapshot;
use crate::{Diagnostic, SrcFile};

/// Rule id.
pub const COW_DISCIPLINE: &str = "cow-discipline";

/// An explicitly registered COW spine type and the file expected to define
/// it (the anchor for config-drift diagnostics).
#[derive(Debug, Clone, Copy)]
pub struct CowType {
    /// The struct's name.
    pub name: &'static str,
    /// Workspace-relative path of the defining file.
    pub file: &'static str,
}

/// The workspace's registered COW spine types.
pub const COW_TYPES: [CowType; 5] = [
    CowType {
        name: "SegLog",
        file: "crates/microsim/src/seglog.rs",
    },
    CowType {
        name: "RequestLog",
        file: "crates/microsim/src/seglog.rs",
    },
    CowType {
        name: "AccessLog",
        file: "crates/microsim/src/seglog.rs",
    },
    CowType {
        name: "SegSamples",
        file: "crates/simnet/src/stats.rs",
    },
    CowType {
        name: "SegStore",
        file: "crates/simnet/src/stats.rs",
    },
];

/// Methods that mutate a collection in place.
const MUT_METHODS: [&str; 24] = [
    "append",
    "clear",
    "dedup",
    "drain",
    "extend",
    "extend_from_slice",
    "fill",
    "insert",
    "pop",
    "pop_back",
    "pop_front",
    "push",
    "push_back",
    "push_front",
    "remove",
    "resize",
    "retain",
    "rotate_left",
    "rotate_right",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "swap",
];

/// Builds the spine map over a set of files: registered type name → names of
/// its `Arc`-typed fields. Explicit [`COW_TYPES`] are always registered
/// (even with no `Arc` field — [`check_registry`] flags that); snapshot
/// TARGETS are registered exactly when their struct carries an `Arc` field.
pub fn spine_map(files: &[SrcFile]) -> BTreeMap<String, Vec<String>> {
    let mut map = BTreeMap::new();
    let explicit: Vec<&str> = COW_TYPES.iter().map(|t| t.name).collect();
    let targets: Vec<&str> = snapshot::TARGETS.iter().map(|t| t.struct_name).collect();
    for file in files {
        for name in explicit.iter().chain(&targets) {
            if map.contains_key(*name) {
                continue;
            }
            let Some(fields) = snapshot::struct_fields_ex(&file.lexed.tokens, name) else {
                continue;
            };
            let spines: Vec<String> = fields
                .iter()
                .filter(|f| f.arc)
                .map(|f| f.name.clone())
                .collect();
            if explicit.contains(name) || !spines.is_empty() {
                map.insert((*name).to_string(), spines);
            }
        }
    }
    map
}

/// Workspace-level config-drift checks: every explicitly registered type
/// must exist somewhere in the model and keep at least one `Arc` spine
/// field.
pub fn check_registry(files: &[SrcFile], out: &mut Vec<Diagnostic>) {
    for ty in &COW_TYPES {
        let mut struct_line = None;
        for file in files {
            if let Some(fields) = snapshot::struct_fields_ex(&file.lexed.tokens, ty.name) {
                struct_line = Some((
                    file.path.clone(),
                    fields.first().map_or(1, |f| f.line),
                    fields.iter().any(|f| f.arc),
                ));
                break;
            }
        }
        match struct_line {
            None => out.push(Diagnostic::new(
                COW_DISCIPLINE,
                ty.file,
                1,
                format!(
                    "registered COW spine type `{}` not found in the workspace; update simlint's COW_TYPES if it moved or was renamed",
                    ty.name
                ),
            )),
            Some((path, line, true)) => {
                let _ = (path, line); // present with an Arc spine — fine
            }
            Some((path, line, false)) => out.push(Diagnostic::new(
                COW_DISCIPLINE,
                &path,
                line,
                format!(
                    "registered COW spine type `{}` has no Arc-typed field; the spine lost its copy-on-write sharing (or COW_TYPES needs updating)",
                    ty.name
                ),
            )),
        }
    }
}

/// Scans one file's `impl` blocks of registered types for spine mutations
/// that do not flow through `Arc::make_mut`.
pub fn check_file(
    file: &SrcFile,
    spines: &BTreeMap<String, Vec<String>>,
    out: &mut Vec<Diagnostic>,
) {
    for f in &file.fns {
        let Some(ty) = f.impl_type.as_deref() else {
            continue;
        };
        let Some(fields) = spines.get(ty) else {
            continue;
        };
        if fields.is_empty() {
            continue;
        }
        check_body(&file.path, ty, f, &file.lexed.tokens, fields, out);
    }
}

/// Scans one fn body, statement by statement.
fn check_body(
    path: &str,
    ty: &str,
    f: &FnItem,
    toks: &[Token],
    spines: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let body = &toks[f.body.0..f.body.1];
    let mut start = 0usize;
    for i in 0..=body.len() {
        let boundary = i == body.len()
            || body[i].is_punct(';')
            || body[i].is_punct('{')
            || body[i].is_punct('}');
        if !boundary {
            continue;
        }
        check_statement(path, ty, &body[start..i], spines, out);
        start = i + 1;
    }
}

/// Checks one statement-ish token run for undisciplined spine mutations.
fn check_statement(
    path: &str,
    ty: &str,
    stmt: &[Token],
    spines: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let has_make_mut = stmt.iter().any(|t| t.is_ident("make_mut"));
    let has_get_mut = stmt.iter().any(|t| t.is_ident("get_mut"));
    // Find `self . <spine>` references.
    for p in 0..stmt.len() {
        if !stmt[p].is_ident("self") || !stmt.get(p + 1).is_some_and(|t| t.is_punct('.')) {
            continue;
        }
        let Some(field) = stmt.get(p + 2).and_then(Token::ident) else {
            continue;
        };
        if !spines.iter().any(|s| s == field) {
            continue;
        }
        let line = stmt[p + 2].line;
        if has_get_mut {
            out.push(Diagnostic::new(
                COW_DISCIPLINE,
                path,
                line,
                format!(
                    "`Arc::get_mut` on COW spine `{ty}.{field}` silently returns None whenever the spine is shared with a fork; use `Arc::make_mut`, which copies exactly when shared"
                ),
            ));
            continue;
        }
        if has_make_mut {
            continue; // disciplined mutation
        }
        // `&mut self.<spine>` outside make_mut: a raw mutable borrow.
        if p >= 2 && stmt[p - 1].is_ident("mut") && stmt[p - 2].is_punct('&') {
            out.push(Diagnostic::new(
                COW_DISCIPLINE,
                path,
                line,
                format!(
                    "raw `&mut` borrow of COW spine `{ty}.{field}` outside `Arc::make_mut`; mutations of a shared spine must copy-on-write through `Arc::make_mut`"
                ),
            ));
            continue;
        }
        // Walk the method/index chain hanging off the field reference.
        if let Some(kind) = chain_mutation(stmt, p + 3) {
            let how = match kind {
                ChainMutation::Method(m) => format!("`.{m}()` mutates it in place"),
                ChainMutation::IndexAssign => "an index-assign writes into it".to_string(),
            };
            out.push(Diagnostic::new(
                COW_DISCIPLINE,
                path,
                line,
                format!(
                    "`{ty}.{field}` is a shared COW spine and {how} without `Arc::make_mut`; sealed segments are shared with forks, so route the mutation through `Arc::make_mut`"
                ),
            ));
        }
    }
}

enum ChainMutation {
    Method(String),
    IndexAssign,
}

/// Follows a `.method(...)` / `[index]` chain starting right after a spine
/// field reference; reports the first mutating link, if any.
fn chain_mutation(stmt: &[Token], mut k: usize) -> Option<ChainMutation> {
    loop {
        match stmt.get(k) {
            Some(t) if t.is_punct('.') => {
                let m = stmt.get(k + 1).and_then(Token::ident)?;
                let mut after = k + 2;
                // `::<T>` turbofish between name and call parens.
                if stmt.get(after).is_some_and(|t| t.is_punct(':'))
                    && stmt.get(after + 1).is_some_and(|t| t.is_punct(':'))
                    && stmt.get(after + 2).is_some_and(|t| t.is_punct('<'))
                {
                    after = skip_group(stmt, after + 2, '<', '>');
                }
                if stmt.get(after).is_some_and(|t| t.is_punct('(')) {
                    if MUT_METHODS.contains(&m) {
                        return Some(ChainMutation::Method(m.to_string()));
                    }
                    k = skip_group(stmt, after, '(', ')');
                } else {
                    k += 2; // plain field access
                }
            }
            Some(t) if t.is_punct('[') => {
                let after = skip_group(stmt, k, '[', ']');
                if stmt.get(after).is_some_and(|t| t.is_punct('='))
                    && !stmt.get(after + 1).is_some_and(|t| t.is_punct('='))
                {
                    return Some(ChainMutation::IndexAssign);
                }
                k = after;
            }
            _ => return None,
        }
    }
}

/// Skips a balanced group starting at `k` (which holds `open`); returns the
/// index one past the matching `close`.
fn skip_group(stmt: &[Token], k: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut i = k;
    while i < stmt.len() {
        if stmt[i].is_punct(open) {
            depth += 1;
        } else if stmt[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}
