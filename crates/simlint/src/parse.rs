//! A lightweight item parser on top of the lexer: resolves `fn` items (with
//! their enclosing `impl` context) and the call sites inside each body.
//!
//! This is the symbol layer the graph rules build on. It is still not a real
//! parser — generics, paths, and bodies are walked by token-balancing — but
//! it is precise enough to answer the two questions the rules ask: "which
//! functions does this workspace define?" and "which of them does this body
//! call?". Nested `fn` items inside a body are attributed to the outer
//! function (their calls count as the outer function's calls), which is the
//! conservative direction for hot-path propagation.

use crate::lexer::Token;

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` type the function lives on (`None` for free functions).
    pub impl_type: Option<String>,
    /// The trait being implemented, when the enclosing block is
    /// `impl Trait for Type`.
    pub impl_trait: Option<String>,
    /// `true` when the function has any `pub` visibility.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body contents (exclusive of the braces),
    /// into the token stream `parse_items` was given.
    pub body: (usize, usize),
    /// Call sites found in the body.
    pub calls: Vec<Call>,
}

/// How a call site is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `receiver.name(...)` — resolves to any workspace method of that name.
    Method,
    /// `Qualifier::name(...)` — resolves within the qualifier type (or to a
    /// free function when the qualifier is a lowercase module segment).
    Qualified,
    /// `name(...)` — resolves to free functions.
    Plain,
    /// `name!(...)` — a macro invocation.
    Macro,
}

/// One call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// The called name (method, function, or macro name).
    pub name: String,
    /// The `Qualifier` in `Qualifier::name(...)`, when present.
    pub qualifier: Option<String>,
    /// The call's syntactic shape.
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: u32,
}

/// Keywords that look like calls when followed by `(`.
fn is_stmt_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "in"
            | "move"
            | "fn"
            | "let"
            | "else"
            | "as"
            | "break"
            | "continue"
            | "where"
    )
}

/// Parses all `fn` items from a token stream (typically one file with
/// `#[cfg(test)]` regions already stripped).
pub fn parse_items(toks: &[Token]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    // Stack of enclosing impl contexts: (brace depth at which the impl body
    // opened, impl type, impl trait).
    let mut ctx: Vec<(i32, String, Option<String>)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            while ctx.last().is_some_and(|(d, _, _)| *d > depth) {
                ctx.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((ty, tr, open)) = parse_impl_header(toks, i) {
                // Register the context as of the body's opening brace; the
                // main loop's `{` arm bumps depth when it reaches `open`.
                ctx.push((depth + 1, ty, tr));
                i = open;
                continue;
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            if let Some((item, next)) = parse_fn(toks, i, ctx.last()) {
                fns.push(item);
                i = next;
                continue;
            }
            i += 1;
            continue;
        }
        i += 1;
    }
    fns
}

/// Parses an `impl` header at index `i` (`impl [<..>] [Trait for] Type
/// [where ..] {`); returns the impl type, the trait (if any), and the index
/// of the body's opening brace.
fn parse_impl_header(toks: &[Token], i: usize) -> Option<(String, Option<String>, usize)> {
    let mut j = i + 1;
    j = skip_angles(toks, j);
    let first = read_path_base(toks, &mut j)?;
    if toks.get(j).is_some_and(|t| t.is_ident("for")) {
        j += 1;
        // Step over `&`, `mut`, and lifetime sugar on the self type.
        while toks
            .get(j)
            .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            || matches!(
                toks.get(j).map(|t| &t.kind),
                Some(crate::lexer::TokenKind::Lifetime)
            )
        {
            j += 1;
        }
        let ty = read_path_base(toks, &mut j)?;
        let open = find_body_open(toks, j)?;
        return Some((ty, Some(first), open));
    }
    let open = find_body_open(toks, j)?;
    Some((first, None, open))
}

/// Reads a type path at `*j` (`a::b::Name<G>`), returning the final path
/// segment's base identifier and leaving `*j` one past the path (generics
/// included).
fn read_path_base(toks: &[Token], j: &mut usize) -> Option<String> {
    let mut name: Option<String> = None;
    while let Some(id) = toks.get(*j).and_then(Token::ident) {
        if id == "for" || id == "where" {
            break;
        }
        name = Some(id.to_string());
        *j += 1;
        *j = skip_angles(toks, *j);
        if toks.get(*j).is_some_and(|t| t.is_punct(':'))
            && toks.get(*j + 1).is_some_and(|t| t.is_punct(':'))
        {
            *j += 2;
            continue;
        }
        break;
    }
    name
}

/// Skips a balanced `<...>` group starting at `j`, if one is there.
fn skip_angles(toks: &[Token], j: usize) -> usize {
    if !toks.get(j).is_some_and(|t| t.is_punct('<')) {
        return j;
    }
    let mut k = j;
    let mut angle = 0i32;
    while k < toks.len() {
        if toks[k].is_punct('<') {
            angle += 1;
        } else if toks[k].is_punct('>') && !(k > 0 && toks[k - 1].is_punct('-')) {
            angle -= 1;
            if angle == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Finds the `{` opening an item body, scanning from `j` (over a where
/// clause etc.); `None` if a `;` ends the item first.
fn find_body_open(toks: &[Token], j: usize) -> Option<usize> {
    let mut k = j;
    while k < toks.len() {
        if toks[k].is_punct('{') {
            return Some(k);
        }
        if toks[k].is_punct(';') {
            return None;
        }
        k += 1;
    }
    None
}

/// Parses one `fn` item whose `fn` keyword is at index `i`; returns the item
/// and the index one past its body (or one past the `;` for body-less
/// declarations, returned as `None` item-wise only when nothing parses).
fn parse_fn(
    toks: &[Token],
    i: usize,
    ctx: Option<&(i32, String, Option<String>)>,
) -> Option<(FnItem, usize)> {
    let name = toks.get(i + 1).and_then(Token::ident)?.to_string();
    let line = toks[i].line;
    let is_pub = fn_is_pub(toks, i);
    // Find the parameter list, skipping generics on the name.
    let mut j = skip_angles(toks, i + 2);
    if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    j = skip_balanced(toks, j, '(', ')');
    // Return type / where clause, up to the body or a `;`.
    let Some(open) = find_body_open(toks, j) else {
        // Trait method declaration without a body.
        return Some((
            FnItem {
                name,
                impl_type: ctx.map(|(_, t, _)| t.clone()),
                impl_trait: ctx.and_then(|(_, _, tr)| tr.clone()),
                is_pub,
                line,
                body: (0, 0),
                calls: Vec::new(),
            },
            j + 1,
        ));
    };
    let close = matching_brace(toks, open);
    let body = (open + 1, close);
    let calls = extract_calls(&toks[body.0..body.1]);
    Some((
        FnItem {
            name,
            impl_type: ctx.map(|(_, t, _)| t.clone()),
            impl_trait: ctx.and_then(|(_, _, tr)| tr.clone()),
            is_pub,
            line,
            body,
            calls,
        },
        close + 1,
    ))
}

/// `true` when the `fn` at `i` carries a `pub` (stepping back over `const`,
/// `unsafe`, `async`, `extern`, and visibility parens).
fn fn_is_pub(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let prev = &toks[j - 1];
        if prev
            .ident()
            .is_some_and(|id| matches!(id, "const" | "unsafe" | "async" | "extern"))
        {
            j -= 1;
            continue;
        }
        if prev.is_punct(')') {
            // Possibly `pub(crate)`: step back over the paren group.
            let mut p = 0i32;
            while j > 0 {
                if toks[j - 1].is_punct(')') {
                    p += 1;
                } else if toks[j - 1].is_punct('(') {
                    p -= 1;
                }
                j -= 1;
                if p == 0 {
                    break;
                }
            }
            continue;
        }
        return prev.is_ident("pub");
    }
    false
}

/// Skips a balanced `open ... close` group starting at index `j` (which must
/// hold `open`); returns the index one past the closing token.
fn skip_balanced(toks: &[Token], j: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        if toks[k].is_punct(open) {
            depth += 1;
        } else if toks[k].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    k
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> usize {
    skip_balanced(toks, open, '{', '}').saturating_sub(1)
}

/// Extracts call sites from a body token slice.
pub fn extract_calls(body: &[Token]) -> Vec<Call> {
    let mut calls = Vec::new();
    for j in 0..body.len() {
        let Some(name) = body[j].ident() else {
            continue;
        };
        if is_stmt_keyword(name) {
            continue;
        }
        // `name!(...)` / `name![...]` / `name! {...}` — a macro.
        if body.get(j + 1).is_some_and(|t| t.is_punct('!'))
            && body
                .get(j + 2)
                .is_some_and(|t| t.is_punct('(') || t.is_punct('[') || t.is_punct('{'))
        {
            calls.push(Call {
                name: name.to_string(),
                qualifier: None,
                kind: CallKind::Macro,
                line: body[j].line,
            });
            continue;
        }
        // `name(` or `name::<T>(` — a call; classify by what precedes it.
        let after = after_turbofish(body, j + 1);
        if !body.get(after).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if j > 0 && body[j - 1].is_punct('.') {
            calls.push(Call {
                name: name.to_string(),
                qualifier: None,
                kind: CallKind::Method,
                line: body[j].line,
            });
            continue;
        }
        if j >= 2 && body[j - 1].is_punct(':') && body[j - 2].is_punct(':') {
            let qualifier = (j >= 3)
                .then(|| body[j - 3].ident().map(str::to_string))
                .flatten();
            calls.push(Call {
                name: name.to_string(),
                qualifier,
                kind: CallKind::Qualified,
                line: body[j].line,
            });
            continue;
        }
        // Skip definitions (`fn name(`) — `fn` is filtered above, but the
        // name token itself follows it.
        if j > 0 && body[j - 1].is_ident("fn") {
            continue;
        }
        calls.push(Call {
            name: name.to_string(),
            qualifier: None,
            kind: CallKind::Plain,
            line: body[j].line,
        });
    }
    calls
}

/// If `j` sits on `::<...>` (a turbofish), returns the index one past it;
/// otherwise returns `j`.
fn after_turbofish(toks: &[Token], j: usize) -> usize {
    if toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
    {
        return skip_angles(toks, j + 2);
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Vec<FnItem> {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn free_and_impl_fns_are_resolved() {
        let src = r"
pub fn free_one(x: u32) -> u32 { helper(x) }
fn helper(x: u32) -> u32 { x }
struct Foo { a: u32 }
impl Foo {
    pub fn method(&self) -> u32 { self.a }
}
impl Clone for Foo {
    fn clone(&self) -> Self { Foo { a: self.a } }
}
";
        let fns = items(src);
        let names: Vec<(&str, Option<&str>, Option<&str>)> = fns
            .iter()
            .map(|f| {
                (
                    f.name.as_str(),
                    f.impl_type.as_deref(),
                    f.impl_trait.as_deref(),
                )
            })
            .collect();
        assert_eq!(
            names,
            [
                ("free_one", None, None),
                ("helper", None, None),
                ("method", Some("Foo"), None),
                ("clone", Some("Foo"), Some("Clone")),
            ]
        );
        assert!(fns[0].is_pub && !fns[1].is_pub && fns[2].is_pub && !fns[3].is_pub);
    }

    #[test]
    fn generic_and_pathed_impls_resolve_the_base_type() {
        let src = r"
impl<T: Ord> crate::store::SegLog<T> {
    fn push(&mut self, v: T) { seal(v) }
}
impl<'a> core::fmt::Display for Wrapper<'a> {
    fn fmt(&self, f: &mut Formatter<'_>) -> Result { write!(f, []) }
}
";
        let fns = items(src);
        assert_eq!(fns[0].impl_type.as_deref(), Some("SegLog"));
        assert_eq!(fns[0].impl_trait, None);
        assert_eq!(fns[1].impl_type.as_deref(), Some("Wrapper"));
        assert_eq!(fns[1].impl_trait.as_deref(), Some("Display"));
    }

    #[test]
    fn call_sites_are_classified() {
        let src = r"
fn body() {
    helper(1);
    self.log.push(2);
    Arc::make_mut(&mut x);
    let v = parts.collect::<Vec<_>>();
    vec![1, 2];
}
";
        let fns = items(src);
        let calls: Vec<(&str, CallKind, Option<&str>)> = fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.kind, c.qualifier.as_deref()))
            .collect();
        assert!(calls.contains(&("helper", CallKind::Plain, None)));
        assert!(calls.contains(&("push", CallKind::Method, None)));
        assert!(calls.contains(&("make_mut", CallKind::Qualified, Some("Arc"))));
        assert!(calls.contains(&("collect", CallKind::Method, None)));
        assert!(calls.contains(&("vec", CallKind::Macro, None)));
    }

    #[test]
    fn trait_decls_without_bodies_parse() {
        let src = "trait T { fn a(&self); fn b(&self) { self.a() } }";
        let fns = items(src);
        assert_eq!(fns.len(), 2);
        assert!(fns[0].calls.is_empty());
        assert_eq!(fns[1].calls[0].name, "a");
    }
}
