//! Rule `naive-twin`: every indexed query entry point must keep a `*_naive`
//! full-scan twin that at least one test exercises.
//!
//! The CSR posting-list indexes (PR 4/5) make windowed telemetry and
//! defense queries fast, but their correctness story is the differential
//! against a naive full scan with bit-identical float accumulation order.
//! Delete the naive twin — or stop testing against it — and the indexed
//! path loses its ground truth while every caller keeps compiling. This
//! rule pins the convention:
//!
//! * the explicit [`TWIN_ENTRIES`] (the workspace's known indexed query
//!   entry points) must exist — a renamed entry point is a diagnostic, so
//!   the registry cannot rot silently;
//! * additionally, every `pub fn *_window`/`*_in` on an indexed log type
//!   ([`INDEXED_LOGS`]) is discovered as an entry point automatically;
//! * each entry point needs a twin on the same type, named by stripping the
//!   `_window`/`_in` suffix and appending `_naive` (`compute` →
//!   `compute_naive`, `analyze_window` → `analyze_naive`, `count_in` →
//!   `count_naive`);
//! * the twin's name must appear in test code (a `tests/` tree or a
//!   `#[cfg(test)]` module) — an untested ground truth is no ground truth.

use std::collections::BTreeSet;

use crate::graph::FnGraph;
use crate::{Diagnostic, SrcFile};

/// Rule id.
pub const NAIVE_TWIN: &str = "naive-twin";

/// One explicitly registered indexed query entry point.
#[derive(Debug, Clone, Copy)]
pub struct TwinEntry {
    /// The impl type of the entry point.
    pub type_name: &'static str,
    /// The query method's name.
    pub fn_name: &'static str,
    /// Workspace-relative path expected to define it (diagnostic anchor
    /// when the entry point disappears).
    pub anchor_file: &'static str,
}

/// The workspace's known indexed query entry points.
pub const TWIN_ENTRIES: [TwinEntry; 4] = [
    TwinEntry {
        type_name: "LatencySummary",
        fn_name: "compute",
        anchor_file: "crates/telemetry/src/latency.rs",
    },
    TwinEntry {
        type_name: "LatencySeries",
        fn_name: "compute",
        anchor_file: "crates/telemetry/src/latency.rs",
    },
    TwinEntry {
        type_name: "Ids",
        fn_name: "analyze_window",
        anchor_file: "crates/defense/src/ids.rs",
    },
    TwinEntry {
        type_name: "RateShield",
        fn_name: "analyze_window",
        anchor_file: "crates/defense/src/shield.rs",
    },
];

/// Indexed log types whose public `*_window`/`*_in` methods are discovered
/// as entry points automatically.
pub const INDEXED_LOGS: [&str; 3] = ["AccessLog", "RequestLog", "WindowLog"];

/// Derives the twin's name: strip a `_window`/`_in` suffix, append
/// `_naive`.
pub fn twin_name(entry: &str) -> String {
    let base = entry
        .strip_suffix("_window")
        .or_else(|| entry.strip_suffix("_in"))
        .unwrap_or(entry);
    format!("{base}_naive")
}

/// Runs the rule over a model's files.
pub fn check(
    files: &[SrcFile],
    test_idents: &BTreeSet<String>,
    entries: &[TwinEntry],
    indexed_logs: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    let graph = FnGraph::build(files);
    // (type, fn, file, line) of every entry point to check, deduped.
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut points: Vec<(String, String, String, u32)> = Vec::new();

    for e in entries {
        let nodes = graph.typed(e.type_name, e.fn_name);
        let Some(&id) = nodes.first() else {
            out.push(Diagnostic::new(
                NAIVE_TWIN,
                e.anchor_file,
                1,
                format!(
                    "registered indexed query `{}::{}` not found in the workspace; update simlint's TWIN_ENTRIES if it was renamed",
                    e.type_name, e.fn_name
                ),
            ));
            continue;
        };
        if seen.insert((e.type_name.to_string(), e.fn_name.to_string())) {
            let f = graph.item(id);
            points.push((
                e.type_name.to_string(),
                e.fn_name.to_string(),
                files[id.file].path.clone(),
                f.line,
            ));
        }
    }

    // Discover `pub fn *_window` / `*_in` on the indexed log types.
    for &id in &graph.nodes {
        let f = graph.item(id);
        let Some(ty) = f.impl_type.as_deref() else {
            continue;
        };
        if !indexed_logs.contains(&ty) || !f.is_pub {
            continue;
        }
        if f.name.ends_with("_naive") || !(f.name.ends_with("_window") || f.name.ends_with("_in")) {
            continue;
        }
        if seen.insert((ty.to_string(), f.name.clone())) {
            points.push((
                ty.to_string(),
                f.name.clone(),
                files[id.file].path.clone(),
                f.line,
            ));
        }
    }

    for (ty, name, path, line) in points {
        let twin = twin_name(&name);
        let twin_nodes = graph.typed(&ty, &twin);
        let Some(&twin_id) = twin_nodes.first() else {
            out.push(Diagnostic::new(
                NAIVE_TWIN,
                &path,
                line,
                format!(
                    "indexed query `{ty}::{name}` has no `{ty}::{twin}` full-scan twin; the indexed path needs a naive ground truth with identical accumulation order"
                ),
            ));
            continue;
        };
        if !test_idents.contains(&twin) {
            let tf = graph.item(twin_id);
            out.push(Diagnostic::new(
                NAIVE_TWIN,
                &files[twin_id.file].path,
                tf.line,
                format!(
                    "`{ty}::{twin}` exists but no test references it; the naive/indexed differential for `{ty}::{name}` is not exercised"
                ),
            ));
        }
    }
}
