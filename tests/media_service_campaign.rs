//! Cross-application generality: the full Grunt pipeline against the
//! MediaService target (an application the attack framework has no
//! knowledge of), including the paper's §VI limitation that CDN-served
//! request types escape the attack.

use apps::media_service;
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{GroundTruth, LatencySummary, ProfilerScore, Traffic};
use workload::ClosedLoopUsers;

#[test]
fn campaign_damages_media_service_but_not_its_cdn_path() {
    let users = 3_000;
    let app = media_service(users);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(7777));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        users,
        app.browsing_model(),
        7,
    )));
    sim.run_until(SimTime::from_secs(20));

    let attack = SimDuration::from_secs(150);
    let campaign = GruntCampaign::run(&mut sim, CampaignConfig::default(), attack);

    // The profiler generalises: groups match ground truth well on an app
    // it was never tuned against.
    let gt = GroundTruth::from_topology(app.topology());
    let members: Vec<_> = campaign.profile.catalog.iter().map(|(id, _)| *id).collect();
    let score = ProfilerScore::compute(&members, &gt, &campaign.profile.groups);
    assert!(
        score.f_score() > 0.75,
        "profiler F {:.2} on MediaService",
        score.f_score()
    );

    let m = sim.metrics();
    let a0 = campaign.attack_started + SimDuration::from_secs(20);
    let a1 = campaign.attack_started + attack;
    let base = LatencySummary::compute(
        m,
        Traffic::Legit,
        None,
        SimTime::from_secs(5),
        SimTime::from_secs(20),
    );
    let att = LatencySummary::compute(m, Traffic::Legit, None, a0, a1);
    assert!(
        att.avg_ms > 3.0 * base.avg_ms,
        "damage {:.0} -> {:.0} ms",
        base.avg_ms,
        att.avg_ms
    );

    // The CDN-served trailer path escapes (paper §VI, limitation 1).
    let trailer = app
        .topology()
        .request_type_by_name("stream-trailer")
        .expect("known type");
    let trailer_base = LatencySummary::compute(
        m,
        Traffic::Legit,
        Some(trailer),
        SimTime::from_secs(5),
        SimTime::from_secs(20),
    );
    let trailer_att = LatencySummary::compute(m, Traffic::Legit, Some(trailer), a0, a1);
    assert!(
        trailer_att.avg_ms < trailer_base.avg_ms * 2.0 + 10.0,
        "CDN path must escape: {:.0} -> {:.0} ms",
        trailer_base.avg_ms,
        trailer_att.avg_ms
    );
}
