//! Workspace-level determinism: identical seeds reproduce an entire
//! campaign — platform events, profiling decisions, attack schedule and
//! every recorded metric — bit for bit.

use apps::social_network;
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use workload::ClosedLoopUsers;

fn run_once(seed: u64) -> (Vec<(u64, u64)>, usize, u64, Vec<u32>) {
    let users = 1_500;
    let app = social_network(users);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(seed));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        users,
        app.browsing_model(),
        seed ^ 0xABCD,
    )));
    sim.run_until(SimTime::from_secs(15));
    let campaign = GruntCampaign::run(
        &mut sim,
        CampaignConfig::default(),
        SimDuration::from_secs(60),
    );
    let log: Vec<(u64, u64)> = sim
        .metrics()
        .request_log()
        .iter()
        .map(|r| (r.submitted_at.as_micros(), r.completed_at.as_micros()))
        .collect();
    let volumes: Vec<u32> = campaign.report.bursts.iter().map(|b| b.volume).collect();
    (
        log,
        campaign.profile.groups.groups().len(),
        campaign.report.requests_sent,
        volumes,
    )
}

#[test]
fn identical_seed_reproduces_the_entire_campaign() {
    let a = run_once(99);
    let b = run_once(99);
    assert_eq!(a.0.len(), b.0.len(), "request counts differ");
    assert_eq!(a.0, b.0, "request timelines differ");
    assert_eq!(a.1, b.1, "profiled groups differ");
    assert_eq!(a.2, b.2, "attack volume differs");
    assert_eq!(a.3, b.3, "burst schedule differs");
}

#[test]
fn different_seed_changes_the_run() {
    let a = run_once(99);
    let b = run_once(100);
    assert_ne!(a.0, b.0, "different seeds should produce different runs");
}

/// A config that names the resilience layer but disables every policy is
/// byte-identical to one that never mentions it: same campaign, same
/// metrics, same pending events, same final RNG stream positions (the
/// `"kernel/retry"` stream must stay at its seed position). This is the
/// invariant that lets every pre-resilience experiment keep its exact
/// numbers.
#[test]
fn disabled_resilience_is_byte_identical_to_no_resilience() {
    use microsim::{ResilienceConfig, ResiliencePolicy};

    let run = |with_config: bool| {
        let users = 1_000;
        let app = social_network(users);
        let mut config = SimConfig::default().seed(0xD15A);
        if with_config {
            config = config.resilience(ResilienceConfig::uniform(ResiliencePolicy::disabled()));
        }
        let mut sim = Simulation::new(app.topology().clone(), config);
        // The user-level retry knob is active but inert: with no failing
        // responses it must draw nothing.
        sim.add_agent(Box::new(
            ClosedLoopUsers::new(users, app.browsing_model(), 0xD15A ^ 0xABCD).with_retry(0.5),
        ));
        sim.run_until(SimTime::from_secs(10));
        GruntCampaign::run(
            &mut sim,
            CampaignConfig::default(),
            SimDuration::from_secs(30),
        );
        sim
    };
    let plain = run(false);
    let disabled = run(true);
    assert_eq!(
        plain.metrics(),
        disabled.metrics(),
        "disabled resilience config changed recorded metrics"
    );
    assert_eq!(
        plain.pending_events(),
        disabled.pending_events(),
        "disabled resilience config changed the pending event population"
    );
    assert_eq!(
        plain.rng_fingerprint(),
        disabled.rng_fingerprint(),
        "disabled resilience config moved an RNG stream"
    );
}

/// A warm-snapshot forked run is byte-identical to a cold run: the same
/// campaign executed with and without snapshot forking must agree on the
/// full request timeline, every recorded metric, the attack schedule and
/// the final RNG stream positions.
#[test]
fn warm_fork_is_byte_identical_to_cold() {
    use lab::{AttackRun, Scenario};

    let scenario = Scenario::social_network(
        "fork-test",
        microsim::PlatformProfile::ec2(),
        1_500,
        1_500,
        0xF04C,
    );
    let baseline = SimDuration::from_secs(20);
    let attack = SimDuration::from_secs(60);
    let config = CampaignConfig::default;

    let forked = AttackRun::execute_opts(&scenario, config(), baseline, attack, true);
    let cold = AttackRun::execute_opts(&scenario, config(), baseline, attack, false);

    assert_eq!(
        forked.sim.metrics(),
        cold.sim.metrics(),
        "metrics differ between forked and cold runs"
    );
    assert_eq!(
        forked.sim.pending_events(),
        cold.sim.pending_events(),
        "pending event counts differ"
    );
    assert_eq!(
        forked.sim.rng_fingerprint(),
        cold.sim.rng_fingerprint(),
        "final RNG stream positions differ"
    );
    assert_eq!(
        forked.campaign.report, cold.campaign.report,
        "attack reports differ"
    );
    assert_eq!(forked.campaign.bots_used, cold.campaign.bots_used);
    assert_eq!(forked.baseline_window, cold.baseline_window);
    assert_eq!(forked.attack_window, cold.attack_window);
}

/// Defense analytics are fork-invariant: a forked run shares the warm
/// prefix's sealed access-log segments and their per-segment indexes,
/// while a cold run builds everything inline — yet the IDS and rate-limit
/// shield must report identically over both, and the indexed window
/// queries must keep matching their naive full-scan ground truths on the
/// forked store.
#[test]
fn indexed_defense_analytics_are_fork_invariant() {
    use defense::{Ids, IdsConfig, RateShield};
    use lab::{AttackRun, Scenario};

    let scenario = Scenario::social_network(
        "defense-fork-test",
        microsim::PlatformProfile::ec2(),
        1_500,
        1_500,
        0xDEF5,
    );
    let baseline = SimDuration::from_secs(20);
    let attack = SimDuration::from_secs(60);
    let forked =
        AttackRun::execute_opts(&scenario, CampaignConfig::default(), baseline, attack, true);
    let cold = AttackRun::execute_opts(
        &scenario,
        CampaignConfig::default(),
        baseline,
        attack,
        false,
    );

    let ids = Ids::new(IdsConfig::default());
    let shield = RateShield::paper_default();
    // One window inside the attack, one spanning the fork point.
    let windows = [
        (SimTime::from_secs(30), SimTime::from_secs(60)),
        (SimTime::from_secs(10), SimTime::from_secs(25)),
    ];
    for (from, to) in windows {
        let report = ids.analyze_window(forked.sim.metrics(), from, to);
        assert_eq!(
            report,
            ids.analyze_window(cold.sim.metrics(), from, to),
            "IDS reports differ between forked and cold runs over [{from:?}, {to:?})"
        );
        assert_eq!(
            report,
            ids.analyze_naive(forked.sim.metrics(), from, to),
            "indexed IDS diverges from the naive scan on the forked store"
        );
        let verdicts = shield.analyze_window(forked.sim.metrics(), from, to);
        assert_eq!(
            verdicts,
            shield.analyze_window(cold.sim.metrics(), from, to),
            "shield verdicts differ between forked and cold runs over [{from:?}, {to:?})"
        );
        assert_eq!(
            verdicts,
            shield.analyze_naive(forked.sim.metrics(), from, to),
            "indexed shield diverges from the naive scan on the forked store"
        );
    }
    assert_eq!(
        ids.analyze(forked.sim.metrics()),
        ids.analyze(cold.sim.metrics()),
        "full-run IDS reports differ between forked and cold runs"
    );
}

/// Several attack variants forked from one shared `WarmProfiled` each match
/// a dedicated cold run that re-simulated the whole prefix inline — the
/// property that makes attack-parameter sweeps safe to share prefixes.
#[test]
fn shared_profiled_fork_matches_dedicated_cold_runs() {
    use grunt::{CommanderConfig, ProfilerConfig};
    use lab::{AttackRun, Scenario, WarmProfiled};

    let scenario = Scenario::social_network(
        "sweep-test",
        microsim::PlatformProfile::ec2(),
        1_500,
        1_500,
        0x54A2,
    );
    let baseline = SimDuration::from_secs(20);
    let attack = SimDuration::from_secs(60);
    let warm = WarmProfiled::new(&scenario, ProfilerConfig::default(), baseline);

    for goal in [600.0, 1_200.0] {
        let commander = CommanderConfig {
            damage_goal_ms: goal,
            ..CommanderConfig::default()
        };
        let forked = AttackRun::forked(&warm, commander.clone(), attack);
        let config = CampaignConfig {
            commander,
            ..CampaignConfig::default()
        };
        let cold = AttackRun::execute_opts(&scenario, config, baseline, attack, false);
        assert_eq!(
            forked.sim.metrics(),
            cold.sim.metrics(),
            "metrics differ at damage goal {goal}"
        );
        assert_eq!(
            forked.sim.rng_fingerprint(),
            cold.sim.rng_fingerprint(),
            "RNG positions differ at damage goal {goal}"
        );
        assert_eq!(
            forked.campaign.report, cold.campaign.report,
            "attack reports differ at damage goal {goal}"
        );
    }
}

/// The parallel sweep executor reproduces the serial path byte for byte:
/// a two-cell Table I slice rendered with `jobs = 1`, `2` and `4` must
/// yield identical markdown and CSV artifacts, because every cell is a
/// self-seeded single-threaded simulation and rows are collected in cell
/// order.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    use lab::experiments::table1;
    use lab::Fidelity;

    let settings: Vec<table1::Setting> = table1::settings().into_iter().take(2).collect();
    assert_eq!(settings.len(), 2, "need a two-cell slice");

    let serial = table1::report_for(&settings, Fidelity::Fast, 1);
    let serial_md = serial.to_markdown();
    let serial_csv = serial.csv_exports();
    assert!(
        serial_md.contains(&settings[0].0) && serial_md.contains(&settings[1].0),
        "slice labels missing from the report"
    );

    for jobs in [2, 4] {
        let parallel = table1::report_for(&settings, Fidelity::Fast, jobs);
        assert_eq!(
            parallel.to_markdown(),
            serial_md,
            "markdown differs at jobs={jobs}"
        );
        assert_eq!(
            parallel.csv_exports(),
            serial_csv,
            "CSV differs at jobs={jobs}"
        );
    }
}

/// The flat-arena population engine is byte-identical to its retained
/// naive twin on paper-scale cells: same RNG stream consumption, same
/// alias-table transitions, same quantised think ticks and same
/// slot-ordered bucket stepping — over completely different bookkeeping
/// (slab + intrusive timer ring vs token `HashMap` + `BTreeMap` buckets
/// and per-call draws).
mod population_twin {
    use super::*;
    use proptest::prelude::*;
    use workload::ClosedLoopUsersNaive;

    fn run_cell(users: usize, seed: u64, think_s: f64, naive: bool) -> Simulation {
        let app = social_network(users);
        let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(seed));
        if naive {
            sim.add_agent(Box::new(
                ClosedLoopUsersNaive::new(users, app.browsing_model(), seed ^ 0xABCD)
                    .with_think_time(think_s),
            ));
        } else {
            sim.add_agent(Box::new(
                ClosedLoopUsers::new(users, app.browsing_model(), seed ^ 0xABCD)
                    .with_think_time(think_s),
            ));
        }
        sim.run_until(SimTime::from_secs(10));
        sim
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn flat_arena_engine_matches_naive_twin(
            users in 600usize..1800,
            seed in any::<u64>(),
            think_idx in 0usize..3,
        ) {
            let think_s = [0.5, 2.0, 7.0][think_idx];
            let fast = run_cell(users, seed, think_s, false);
            let naive = run_cell(users, seed, think_s, true);
            prop_assert_eq!(
                fast.metrics(),
                naive.metrics(),
                "recorded metrics diverged (users={}, seed={seed}, think={think_s})",
                users
            );
            prop_assert_eq!(fast.rng_fingerprint(), naive.rng_fingerprint());
        }
    }
}

/// Snapshot/fork correctness of the think-timer arena *mid-bucket*: the
/// checkpoint lands at an arbitrary microsecond — between a bucket filling
/// up and its wakeup firing — and the forked run must stay in lockstep
/// with the uninterrupted original.
mod arena_fork {
    use super::*;
    use proptest::prelude::*;

    fn observe(sim: &Simulation) -> (usize, (u64, u64), Vec<(u64, u64)>) {
        (
            sim.pending_events(),
            sim.rng_fingerprint(),
            sim.metrics()
                .request_log()
                .iter()
                .map(|r| (r.submitted_at.as_micros(), r.completed_at.as_micros()))
                .collect(),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn mid_bucket_fork_matches_uninterrupted_run(
            users in 50usize..600,
            seed in any::<u64>(),
            think_idx in 0usize..3,
            t1_micros in 1_000_000u64..6_000_000,
        ) {
            let think_s = [0.2, 1.0, 7.0][think_idx];
            let app = social_network(users);
            let build = || {
                let mut sim =
                    Simulation::new(app.topology().clone(), SimConfig::default().seed(seed));
                let id = sim.add_agent(Box::new(
                    ClosedLoopUsers::new(users, app.browsing_model(), seed ^ 0x51AB)
                        .with_think_time(think_s),
                ));
                (sim, id)
            };
            let t2 = SimTime::from_secs(12);

            let (mut cold, cold_id) = build();
            cold.run_until(t2);

            let (mut warm, warm_id) = build();
            // Checkpoint mid-run at an arbitrary microsecond: think buckets
            // are partially filled and their wakeups are still pending.
            warm.run_until(SimTime::from_micros(t1_micros));
            let users_mid: &ClosedLoopUsers = warm.agent_as(warm_id).expect("typed access");
            prop_assume!(users_mid.pending_think_buckets() > 0);
            let snap = warm.checkpoint().expect("snapshot");
            let mut fork = Simulation::from_snapshot(&snap);
            warm.run_until(t2);
            fork.run_until(t2);

            prop_assert_eq!(observe(&warm), observe(&fork), "fork diverged from original");
            prop_assert_eq!(observe(&warm), observe(&cold), "warm run diverged from cold");
            let a: &ClosedLoopUsers = warm.agent_as(warm_id).expect("typed access");
            let b: &ClosedLoopUsers = fork.agent_as(warm_id).expect("typed access");
            let c: &ClosedLoopUsers = cold.agent_as(cold_id).expect("typed access");
            prop_assert_eq!(a.latency_stats().count(), b.latency_stats().count());
            prop_assert_eq!(
                a.latency_stats().mean().to_bits(),
                b.latency_stats().mean().to_bits()
            );
            prop_assert_eq!(a.latency_stats().count(), c.latency_stats().count());
            prop_assert_eq!(a.pending_think_buckets(), b.pending_think_buckets());
            let sa: Vec<_> = a.samples().iter().collect();
            let sb: Vec<_> = b.samples().iter().collect();
            prop_assert_eq!(sa, sb);
        }
    }
}
