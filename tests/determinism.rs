//! Workspace-level determinism: identical seeds reproduce an entire
//! campaign — platform events, profiling decisions, attack schedule and
//! every recorded metric — bit for bit.

use apps::social_network;
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use workload::ClosedLoopUsers;

fn run_once(seed: u64) -> (Vec<(u64, u64)>, usize, u64, Vec<u32>) {
    let users = 1_500;
    let app = social_network(users);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(seed));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        users,
        app.browsing_model(),
        seed ^ 0xABCD,
    )));
    sim.run_until(SimTime::from_secs(15));
    let campaign = GruntCampaign::run(
        &mut sim,
        CampaignConfig::default(),
        SimDuration::from_secs(60),
    );
    let log: Vec<(u64, u64)> = sim
        .metrics()
        .request_log()
        .iter()
        .map(|r| (r.submitted_at.as_micros(), r.completed_at.as_micros()))
        .collect();
    let volumes: Vec<u32> = campaign.report.bursts.iter().map(|b| b.volume).collect();
    (
        log,
        campaign.profile.groups.groups().len(),
        campaign.report.requests_sent,
        volumes,
    )
}

#[test]
fn identical_seed_reproduces_the_entire_campaign() {
    let a = run_once(99);
    let b = run_once(99);
    assert_eq!(a.0.len(), b.0.len(), "request counts differ");
    assert_eq!(a.0, b.0, "request timelines differ");
    assert_eq!(a.1, b.1, "profiled groups differ");
    assert_eq!(a.2, b.2, "attack volume differs");
    assert_eq!(a.3, b.3, "burst schedule differs");
}

#[test]
fn different_seed_changes_the_run() {
    let a = run_once(99);
    let b = run_once(100);
    assert_ne!(a.0, b.0, "different seeds should produce different runs");
}

/// A warm-snapshot forked run is byte-identical to a cold run: the same
/// campaign executed with and without snapshot forking must agree on the
/// full request timeline, every recorded metric, the attack schedule and
/// the final RNG stream positions.
#[test]
fn warm_fork_is_byte_identical_to_cold() {
    use lab::{AttackRun, Scenario};

    let scenario = Scenario::social_network(
        "fork-test",
        microsim::PlatformProfile::ec2(),
        1_500,
        1_500,
        0xF04C,
    );
    let baseline = SimDuration::from_secs(20);
    let attack = SimDuration::from_secs(60);
    let config = CampaignConfig::default;

    let forked = AttackRun::execute_opts(&scenario, config(), baseline, attack, true);
    let cold = AttackRun::execute_opts(&scenario, config(), baseline, attack, false);

    assert_eq!(
        forked.sim.metrics(),
        cold.sim.metrics(),
        "metrics differ between forked and cold runs"
    );
    assert_eq!(
        forked.sim.pending_events(),
        cold.sim.pending_events(),
        "pending event counts differ"
    );
    assert_eq!(
        forked.sim.rng_fingerprint(),
        cold.sim.rng_fingerprint(),
        "final RNG stream positions differ"
    );
    assert_eq!(
        forked.campaign.report, cold.campaign.report,
        "attack reports differ"
    );
    assert_eq!(forked.campaign.bots_used, cold.campaign.bots_used);
    assert_eq!(forked.baseline_window, cold.baseline_window);
    assert_eq!(forked.attack_window, cold.attack_window);
}

/// Defense analytics are fork-invariant: a forked run shares the warm
/// prefix's sealed access-log segments and their per-segment indexes,
/// while a cold run builds everything inline — yet the IDS and rate-limit
/// shield must report identically over both, and the indexed window
/// queries must keep matching their naive full-scan ground truths on the
/// forked store.
#[test]
fn indexed_defense_analytics_are_fork_invariant() {
    use defense::{Ids, IdsConfig, RateShield};
    use lab::{AttackRun, Scenario};

    let scenario = Scenario::social_network(
        "defense-fork-test",
        microsim::PlatformProfile::ec2(),
        1_500,
        1_500,
        0xDEF5,
    );
    let baseline = SimDuration::from_secs(20);
    let attack = SimDuration::from_secs(60);
    let forked =
        AttackRun::execute_opts(&scenario, CampaignConfig::default(), baseline, attack, true);
    let cold = AttackRun::execute_opts(
        &scenario,
        CampaignConfig::default(),
        baseline,
        attack,
        false,
    );

    let ids = Ids::new(IdsConfig::default());
    let shield = RateShield::paper_default();
    // One window inside the attack, one spanning the fork point.
    let windows = [
        (SimTime::from_secs(30), SimTime::from_secs(60)),
        (SimTime::from_secs(10), SimTime::from_secs(25)),
    ];
    for (from, to) in windows {
        let report = ids.analyze_window(forked.sim.metrics(), from, to);
        assert_eq!(
            report,
            ids.analyze_window(cold.sim.metrics(), from, to),
            "IDS reports differ between forked and cold runs over [{from:?}, {to:?})"
        );
        assert_eq!(
            report,
            ids.analyze_naive(forked.sim.metrics(), from, to),
            "indexed IDS diverges from the naive scan on the forked store"
        );
        let verdicts = shield.analyze_window(forked.sim.metrics(), from, to);
        assert_eq!(
            verdicts,
            shield.analyze_window(cold.sim.metrics(), from, to),
            "shield verdicts differ between forked and cold runs over [{from:?}, {to:?})"
        );
        assert_eq!(
            verdicts,
            shield.analyze_naive(forked.sim.metrics(), from, to),
            "indexed shield diverges from the naive scan on the forked store"
        );
    }
    assert_eq!(
        ids.analyze(forked.sim.metrics()),
        ids.analyze(cold.sim.metrics()),
        "full-run IDS reports differ between forked and cold runs"
    );
}

/// Several attack variants forked from one shared `WarmProfiled` each match
/// a dedicated cold run that re-simulated the whole prefix inline — the
/// property that makes attack-parameter sweeps safe to share prefixes.
#[test]
fn shared_profiled_fork_matches_dedicated_cold_runs() {
    use grunt::{CommanderConfig, ProfilerConfig};
    use lab::{AttackRun, Scenario, WarmProfiled};

    let scenario = Scenario::social_network(
        "sweep-test",
        microsim::PlatformProfile::ec2(),
        1_500,
        1_500,
        0x54A2,
    );
    let baseline = SimDuration::from_secs(20);
    let attack = SimDuration::from_secs(60);
    let warm = WarmProfiled::new(&scenario, ProfilerConfig::default(), baseline);

    for goal in [600.0, 1_200.0] {
        let commander = CommanderConfig {
            damage_goal_ms: goal,
            ..CommanderConfig::default()
        };
        let forked = AttackRun::forked(&warm, commander.clone(), attack);
        let config = CampaignConfig {
            commander,
            ..CampaignConfig::default()
        };
        let cold = AttackRun::execute_opts(&scenario, config, baseline, attack, false);
        assert_eq!(
            forked.sim.metrics(),
            cold.sim.metrics(),
            "metrics differ at damage goal {goal}"
        );
        assert_eq!(
            forked.sim.rng_fingerprint(),
            cold.sim.rng_fingerprint(),
            "RNG positions differ at damage goal {goal}"
        );
        assert_eq!(
            forked.campaign.report, cold.campaign.report,
            "attack reports differ at damage goal {goal}"
        );
    }
}

/// The parallel sweep executor reproduces the serial path byte for byte:
/// a two-cell Table I slice rendered with `jobs = 1`, `2` and `4` must
/// yield identical markdown and CSV artifacts, because every cell is a
/// self-seeded single-threaded simulation and rows are collected in cell
/// order.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    use lab::experiments::table1;
    use lab::Fidelity;

    let settings: Vec<table1::Setting> = table1::settings().into_iter().take(2).collect();
    assert_eq!(settings.len(), 2, "need a two-cell slice");

    let serial = table1::report_for(&settings, Fidelity::Fast, 1);
    let serial_md = serial.to_markdown();
    let serial_csv = serial.csv_exports();
    assert!(
        serial_md.contains(&settings[0].0) && serial_md.contains(&settings[1].0),
        "slice labels missing from the report"
    );

    for jobs in [2, 4] {
        let parallel = table1::report_for(&settings, Fidelity::Fast, jobs);
        assert_eq!(
            parallel.to_markdown(),
            serial_md,
            "markdown differs at jobs={jobs}"
        );
        assert_eq!(
            parallel.csv_exports(),
            serial_csv,
            "CSV differs at jobs={jobs}"
        );
    }
}
