//! Serde integration: topologies, metrics and profiling artifacts survive
//! a JSON round-trip — the interchange format for offline analysis
//! tooling.

use apps::social_network;
use callgraph::{DependencyGroups, RequestTypeId, Topology};
use microsim::agents::FixedRate;
use microsim::{Metrics, SimConfig, Simulation};
use simnet::{SimDuration, SimTime};

#[test]
fn topology_round_trips_through_json() {
    let topo = social_network(2_000).topology().clone();
    let json = serde_json::to_string(&topo).expect("serialize");
    let back: Topology = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.num_services(), topo.num_services());
    assert_eq!(back.num_request_types(), topo.num_request_types());
    for (a, b) in topo.services().iter().zip(back.services()) {
        assert_eq!(a, b);
    }
    for (a, b) in topo.request_types().iter().zip(back.request_types()) {
        assert_eq!(a, b);
    }
}

#[test]
fn metrics_round_trip_preserves_logs_and_windows() {
    let topo = social_network(1_000).topology().clone();
    let mut sim = Simulation::new(topo, SimConfig::default().seed(3).trace_sampling(1.0));
    sim.add_agent(Box::new(FixedRate::new(
        RequestTypeId::new(0),
        SimDuration::from_millis(25),
        40,
    )));
    sim.run_until(SimTime::from_secs(3));
    let metrics = sim.into_metrics();

    let json = serde_json::to_string(&metrics).expect("serialize");
    let back: Metrics = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.request_log(), metrics.request_log());
    assert_eq!(back.access_log().len(), metrics.access_log().len());
    assert_eq!(back.num_windows(), metrics.num_windows());
    assert_eq!(back.traces().len(), metrics.traces().len());
    assert_eq!(back.window(), metrics.window());
    // Span trees survive intact: same critical paths.
    for ((rt_a, h_a), (rt_b, h_b)) in metrics.traces().iter().zip(back.traces()) {
        assert_eq!(rt_a, rt_b);
        assert_eq!(
            h_a.critical_path().map(|c| c.services()),
            h_b.critical_path().map(|c| c.services())
        );
    }
}

#[test]
fn dependency_groups_round_trip() {
    let topo = social_network(1_000).topology().clone();
    let groups =
        DependencyGroups::from_ground_truth_filtered(&topo.paths(), |s| topo.service(s).blockable);
    let json = serde_json::to_string(&groups).expect("serialize");
    let back: DependencyGroups = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.groups(), groups.groups());
    for (a, b, d) in groups.pairs() {
        assert_eq!(back.pairwise(a, b), d);
    }
}
