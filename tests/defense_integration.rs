//! Workspace-level defense integration: the full detector stack against
//! all three attack families on one deployment, checking the
//! detectability ordering the paper argues for.

use apps::social_network;
use baselines::{BruteForce, TailAttack, TailAttackConfig};
use defense::{AlertKind, CorrelationDefense, Ids, IdsConfig};
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{Metrics, SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use workload::ClosedLoopUsers;

const USERS: usize = 3_000;

fn deploy(seed: u64) -> Simulation {
    let app = social_network(USERS);
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(seed));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        USERS,
        app.browsing_model(),
        seed,
    )));
    sim.run_until(SimTime::from_secs(20));
    sim
}

fn attacker_interval_alerts(m: &Metrics) -> usize {
    Ids::new(IdsConfig::default())
        .analyze(m)
        .of_kind(AlertKind::IntervalViolation)
        .filter(|a| a.hit_attacker)
        .count()
}

#[test]
fn grunt_evades_rules_but_correlation_defense_catches_bots() {
    let mut sim = deploy(61);
    let campaign = GruntCampaign::run(
        &mut sim,
        CampaignConfig::default(),
        SimDuration::from_secs(120),
    );
    let horizon = sim.now();
    let m = sim.metrics();
    assert_eq!(
        attacker_interval_alerts(m),
        0,
        "rule-based IDS must stay silent"
    );

    // The Section VI defense: every bot's requests land exclusively inside
    // bottleneck-correlated windows, so both per-session scoring (bots are
    // reused across bursts) and source-prefix aggregation (the farm's
    // address block as a whole) separate them from legitimate users.
    let defense = CorrelationDefense {
        aggregate_prefix_bits: Some(12),
        ..CorrelationDefense::default()
    };
    let report = defense.analyze(m, horizon);
    assert!(
        report.recall() > 0.5,
        "correlation defense should catch most bots, recall {:.2}",
        report.recall()
    );
    assert!(
        report.precision() > 0.7,
        "without flagging many legit users, precision {:.2}",
        report.precision()
    );
    assert!(campaign.report.requests_sent > 0);
}

#[test]
fn brute_force_is_loud_by_every_measure() {
    let mut sim = deploy(62);
    let a0 = sim.now();
    let app = social_network(USERS);
    sim.add_agent(Box::new(BruteForce::new(
        app.request_mix(),
        3_000.0,
        150,
        a0 + SimDuration::from_secs(60),
        7,
    )));
    sim.run_until(a0 + SimDuration::from_secs(60));
    let m = sim.metrics();
    assert!(attacker_interval_alerts(m) > 1_000);
    assert!(
        Ids::new(IdsConfig::default())
            .analyze(m)
            .of_kind(AlertKind::ResourceSaturation)
            .count()
            > 0
    );
}

#[test]
fn tail_attack_is_quiet_but_damage_stays_local() {
    let mut sim = deploy(63);
    let a0 = sim.now();
    let app = social_network(USERS);
    let target = app
        .topology()
        .request_type_by_name("compose-rich-post")
        .expect("known type");
    sim.add_agent(Box::new(TailAttack::new(TailAttackConfig::comparable(
        target,
        a0 + SimDuration::from_secs(90),
    ))));
    sim.run_until(a0 + SimDuration::from_secs(90));
    let m = sim.metrics();

    // Quiet on identity rules (bursty but rotating identities)...
    assert_eq!(attacker_interval_alerts(m), 0);
    // ...but reads and social paths stay healthy: the damage cannot cross
    // dependency-group boundaries.
    let read = telemetry::LatencySummary::compute(
        m,
        telemetry::Traffic::Legit,
        app.topology().request_type_by_name("read-home-timeline"),
        a0 + SimDuration::from_secs(20),
        a0 + SimDuration::from_secs(90),
    );
    assert!(
        read.avg_ms < 150.0,
        "read path damaged: {:.0} ms",
        read.avg_ms
    );
}
