//! Workspace-level end-to-end test: the full pipeline on a µBench target
//! that no other test exercises — generation, workload, profiling, attack,
//! white-box analysis and defenses, spanning every crate.

use apps::{UBench, UBenchConfig};
use defense::{AlertKind, Ids, IdsConfig, RateShield};
use grunt::{CampaignConfig, GruntCampaign};
use microsim::{SimConfig, Simulation};
use simnet::{SimDuration, SimTime};
use telemetry::{GroundTruth, LatencySummary, ProfilerScore, Traffic};
use workload::ClosedLoopUsers;

#[test]
fn grunt_campaign_on_unknown_ubench_app() {
    let users = 3_000;
    let app = UBench::generate(UBenchConfig::app1(users));
    let mut sim = Simulation::new(app.topology().clone(), SimConfig::default().seed(1234));
    sim.add_agent(Box::new(ClosedLoopUsers::new(
        users,
        app.browsing_model(),
        55,
    )));
    sim.run_until(SimTime::from_secs(20));

    let attack = SimDuration::from_secs(120);
    let campaign = GruntCampaign::run(&mut sim, CampaignConfig::default(), attack);

    // Profiling quality against ground truth.
    let gt = GroundTruth::from_topology(app.topology());
    let members: Vec<_> = campaign.profile.catalog.iter().map(|(id, _)| *id).collect();
    let score = ProfilerScore::compute(&members, &gt, &campaign.profile.groups);
    assert!(
        score.f_score() > 0.8,
        "profiler F {:.2} (P {:.2} R {:.2})",
        score.f_score(),
        score.precision(),
        score.recall()
    );

    // Damage on legitimate users.
    let m = sim.metrics();
    let base = LatencySummary::compute(
        m,
        Traffic::Legit,
        None,
        SimTime::from_secs(5),
        SimTime::from_secs(20),
    );
    let a0 = campaign.attack_started + SimDuration::from_secs(20);
    let a1 = campaign.attack_started + attack;
    let att = LatencySummary::compute(m, Traffic::Legit, None, a0, a1);
    assert!(
        att.avg_ms > 4.0 * base.avg_ms,
        "damage {:.0} -> {:.0} ms",
        base.avg_ms,
        att.avg_ms
    );

    // Stealth against identity-keyed detectors.
    let ids = Ids::new(IdsConfig::default()).analyze(m);
    assert_eq!(
        ids.of_kind(AlertKind::IntervalViolation)
            .filter(|a| a.hit_attacker)
            .count(),
        0
    );
    assert_eq!(RateShield::paper_default().blocked_count(m), 0);

    // White-box: the attack manifests as sub-second alternating
    // millibottlenecks, not sustained saturation.
    let mbs = telemetry::find_millibottlenecks(m, 0.95);
    let during: Vec<_> = mbs
        .iter()
        .filter(|mb| mb.start >= campaign.attack_started)
        .copied()
        .collect();
    let stats = telemetry::millibottleneck_stats(&during, None);
    assert!(stats.count > 5, "millibottlenecks: {}", stats.count);
    assert!(
        stats.mean_length < SimDuration::from_millis(700),
        "mean MB {}",
        stats.mean_length
    );
    // Bottlenecks hit more than one distinct service (alternation).
    let services: std::collections::HashSet<_> = during.iter().map(|mb| mb.service).collect();
    assert!(services.len() >= 2, "alternating services: {services:?}");
}
